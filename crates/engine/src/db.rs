//! The compliant database: substrates wired per profile, with the
//! Data-CASE abstract model maintained alongside for auditability.
//!
//! `CompliantDb` is crate-internal: the only public mutation path is the
//! session-scoped [`Frontend`](crate::frontend::Frontend), which owns an
//! engine and drives it through [`CompliantDb::apply`]. Raw substrate /
//! model access is available in-crate (erasure executor, sweeper, space
//! accounting) and, for tests and probes, through the clearly-marked
//! [`Forensic`](crate::frontend::Forensic) guard.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use datacase_audit::loggers::{AuditLogger, CsvRowLogger, EncryptedLogger, FullQueryLogger};
use datacase_audit::record::LogRecord;
use datacase_core::action::{Action, ActionKind};
use datacase_core::checker::{ComplianceChecker, ComplianceReport};
use datacase_core::entity::{EntityKind, EntityRegistry};
use datacase_core::grounding::erasure::ErasureInterpretation;
use datacase_core::history::{ActionHistory, HistoryTuple};
use datacase_core::ids::{EntityId, UnitId};
use datacase_core::invariants::EvidenceFlags;
use datacase_core::policy::Policy;
use datacase_core::purpose::{well_known as wk, PurposeId, PurposeRegistry};
use datacase_core::regulation::Regulation;
use datacase_core::state::DatabaseState;
use datacase_core::unit::{ErasureStatus, Origin};
use datacase_core::value::Value;
use datacase_crypto::ctr::AesCtr;
use datacase_crypto::vault::KeyVault;
use datacase_policy::enforcer::{
    AccessRequest, Decision, EpochBus, PolicyEnforcer, PolicyEpoch, VersionedEnforcer,
};
use datacase_policy::fgac::{FgacConfig, FgacEnforcer};
use datacase_policy::metatable::MetaTableEnforcer;
use datacase_policy::rbac::{RbacEnforcer, Role};
use datacase_sim::time::Ts;
use datacase_sim::{Meter, SimClock};
use datacase_storage::backend::{
    BackendKind, BackendStats, LsmBackend, MaintenanceDepth, StorageBackend,
};
use datacase_storage::forensic::ForensicFindings;
use datacase_storage::heap::HeapDb;
use datacase_workloads::opstream::{MetaField, MetaSelector};

use crate::error::EngineError;
use crate::exec::{CachedDecision, CipherJob, CipherPool, DecisionCache, StagedRead};
use crate::frontend::{Reply, Request};
use crate::profiles::{DeleteStrategy, EngineConfig, ProfileKind};

/// Who is issuing operations (maps workloads to entities).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Actor {
    /// The controller (WCon).
    Controller,
    /// A processor (WPro).
    Processor,
    /// The record's data-subject (WCus).
    Subject,
}

/// Per-key bookkeeping the executor needs without touching the model.
#[derive(Clone, Copy, Debug)]
struct KeyMeta {
    unit: UnitId,
    subject: u32,
    purpose: PurposeId,
    ttl: Ts,
}

/// A denied access: the typed error plus its already-charged DENIED
/// audit record (boxed — denials are the cold path).
pub(crate) struct DeniedAccess {
    pub error: EngineError,
    pub record: LogRecord,
}

/// The compliant database engine.
///
/// The compliance stack (enforcement, logging, crypto, the abstract
/// Data-CASE model) composes over any [`StorageBackend`]; the substrate is
/// chosen by [`EngineConfig::backend`](crate::profiles::EngineConfig).
pub struct CompliantDb {
    config: EngineConfig,
    backend: Box<dyn StorageBackend>,
    enforcer: VersionedEnforcer,
    logger: Box<dyn AuditLogger>,
    vault: Option<KeyVault>,
    state: DatabaseState,
    history: ActionHistory,
    purposes: PurposeRegistry,
    entities: EntityRegistry,
    controller: EntityId,
    processor: EntityId,
    auditor: EntityId,
    third_party: EntityId,
    subject_entities: HashMap<u32, EntityId>,
    key_meta: HashMap<u64, KeyMeta>,
    unit_key: HashMap<UnitId, u64>,
    by_purpose: HashMap<PurposeId, HashSet<u64>>,
    by_subject: HashMap<u32, HashSet<u64>>,
    clock: SimClock,
    meter: Arc<Meter>,
    decisions: DecisionCache,
    /// The persistent apply-stage AES pool (present when the pipeline is
    /// on and more than one worker is available).
    pool: Option<CipherPool>,
    /// Pipelined-span mode: audit records are charged and sequenced
    /// immediately but queued in `pending_log` instead of entering the
    /// store, until the span flushes (see `datacase_engine::exec`).
    deferred: bool,
    pending_log: Vec<LogRecord>,
    deletes_since_maintenance: u64,
    ops_since_checkpoint: u64,
    log_seq: u64,
    denied: u64,
}

impl std::fmt::Debug for CompliantDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompliantDb")
            .field("profile", &self.config.profile)
            .field("keys", &self.key_meta.len())
            .finish()
    }
}

impl CompliantDb {
    /// Build an engine for `config` on a fresh clock/meter.
    pub(crate) fn new(config: EngineConfig) -> CompliantDb {
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        CompliantDb::with_clock(config, clock, meter)
    }

    /// Build an engine sharing an existing clock/meter (sharded runs).
    pub(crate) fn with_clock(
        config: EngineConfig,
        clock: SimClock,
        meter: Arc<Meter>,
    ) -> CompliantDb {
        let mut entities = EntityRegistry::new();
        let controller = entities.register("MetaSpace", EntityKind::Controller);
        let processor = entities.register("CloudProc", EntityKind::Processor);
        let auditor = entities.register("DPA-Auditor", EntityKind::Auditor);
        let third_party = entities.register("AdPartner", EntityKind::ThirdParty);

        let enforcer: Box<dyn PolicyEnforcer> = match config.profile {
            ProfileKind::Stock | ProfileKind::PBase => {
                let mut rbac = RbacEnforcer::new(clock.clone(), meter.clone());
                Self::install_roles(&mut rbac, controller, processor, auditor);
                Box::new(rbac)
            }
            ProfileKind::PGBench => Box::new(MetaTableEnforcer::new(clock.clone(), meter.clone())),
            ProfileKind::PSys => Box::new(FgacEnforcer::new(
                FgacConfig {
                    use_index: config.fgac_index,
                    ..FgacConfig::default()
                },
                clock.clone(),
                meter.clone(),
            )),
        };

        let logger: Box<dyn AuditLogger> = match config.profile {
            ProfileKind::Stock | ProfileKind::PBase => Box::new(CsvRowLogger::new(
                b"audit-key",
                clock.clone(),
                meter.clone(),
            )),
            ProfileKind::PGBench => Box::new(FullQueryLogger::new(
                b"audit-key",
                clock.clone(),
                meter.clone(),
            )),
            ProfileKind::PSys => Box::new(
                EncryptedLogger::new(b"audit-key", clock.clone(), meter.clone())
                    .with_crypto_backend(config.crypto_backend),
            ),
        };

        let vault = config.tuple_encryption.map(|size| {
            KeyVault::new(b"engine-master-secret", size)
                .with_backend(config.crypto_backend)
                .with_keystream_cache(config.keystream_cache)
        });

        // The only place a concrete substrate type appears: construction.
        let backend: Box<dyn StorageBackend> = match config.backend {
            BackendKind::Heap => {
                let mut heap = config.heap.clone();
                heap.crypto_backend = config.crypto_backend;
                heap.fault = config.fault.clone();
                Box::new(HeapDb::new(heap, clock.clone(), meter.clone()))
            }
            BackendKind::Lsm => {
                let mut lsm = config.lsm.clone();
                lsm.fault = config.fault.clone();
                Box::new(LsmBackend::new(lsm, clock.clone(), meter.clone()))
            }
        };

        let workers = match config.pipeline_workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            n => n,
        };
        let pool = (config.pipeline && workers > 1).then(|| CipherPool::new(workers));
        let decisions = DecisionCache::new(config.decision_cache);
        let mut db = CompliantDb {
            config,
            backend,
            enforcer: VersionedEnforcer::new(enforcer),
            logger,
            vault,
            state: DatabaseState::new(),
            history: ActionHistory::new(),
            purposes: PurposeRegistry::with_defaults(),
            entities,
            controller,
            processor,
            auditor,
            third_party,
            subject_entities: HashMap::new(),
            key_meta: HashMap::new(),
            unit_key: HashMap::new(),
            by_purpose: HashMap::new(),
            by_subject: HashMap::new(),
            clock,
            meter,
            decisions,
            pool,
            deferred: false,
            pending_log: Vec::new(),
            deletes_since_maintenance: 0,
            ops_since_checkpoint: 0,
            log_seq: 0,
            denied: 0,
        };
        db.record_assessments();
        db
    }

    fn install_roles(
        rbac: &mut RbacEnforcer,
        controller: EntityId,
        processor: EntityId,
        auditor: EntityId,
    ) {
        use ActionKind::*;
        let service_purposes = [
            wk::billing(),
            wk::analytics(),
            wk::advertising(),
            wk::smart_space(),
            wk::retention(),
        ];
        let mut controller_grants: Vec<(PurposeId, Vec<ActionKind>)> = vec![
            (
                wk::contract(),
                vec![Create, UpdatePolicy, UpdateMeta, ReadMeta, Notify],
            ),
            (wk::compliance_erase(), vec![Erase, Sanitize, ReadMeta]),
        ];
        let mut processor_grants: Vec<(PurposeId, Vec<ActionKind>)> = Vec::new();
        for p in service_purposes {
            controller_grants.push((p, vec![Read, UpdateValue, ReadMeta, Derive]));
            processor_grants.push((p, vec![Read, UpdateValue, ReadMeta, Derive]));
        }
        let r_controller = rbac.define_role(Role::new("controller", controller_grants));
        let r_processor = rbac.define_role(Role::new("processor", processor_grants));
        let r_subject = rbac.define_role(Role::new(
            "data-subject",
            vec![
                (
                    wk::subject_access(),
                    vec![Read, ReadMeta, UpdateValue, UpdatePolicy, Erase, Restore],
                ),
                (wk::compliance_erase(), vec![Erase]),
                (wk::contract(), vec![UpdatePolicy, UpdateMeta, Notify]),
            ],
        ));
        let r_auditor = rbac.define_role(Role::new("auditor", vec![(wk::audit(), vec![ReadMeta])]));
        rbac.add_member(controller, r_controller);
        rbac.add_member(processor, r_processor);
        rbac.add_member(auditor, r_auditor);
        // Subjects join the subject role as they appear.
        rbac.set_subject_role(r_subject);
    }

    fn record_assessments(&mut self) {
        // Invariant III: a DPIA per purpose before any processing.
        let now = self.clock.now();
        for p in [
            wk::billing(),
            wk::analytics(),
            wk::advertising(),
            wk::smart_space(),
            wk::retention(),
            wk::subject_access(),
            wk::audit(),
        ] {
            self.history.record(HistoryTuple {
                unit: UnitId(u64::MAX),
                purpose: p,
                entity: self.controller,
                action: Action::Assess,
                at: now,
            });
        }
    }

    fn subject_entity(&mut self, subject: u32) -> EntityId {
        if let Some(&e) = self.subject_entities.get(&subject) {
            return e;
        }
        let e = self
            .entities
            .register(&format!("user-{subject}"), EntityKind::DataSubject);
        self.subject_entities.insert(subject, e);
        // RBAC-based profiles enrol the subject into the data-subject role;
        // unit-scoped enforcers ignore the hook.
        self.enforcer.on_new_subject(e);
        e
    }

    fn actor_entity(&mut self, actor: Actor, subject: u32) -> EntityId {
        match actor {
            Actor::Controller => self.controller,
            Actor::Processor => self.processor,
            Actor::Subject => self.subject_entity(subject),
        }
    }

    /// When the unit left the live state, if it did.
    fn erased_since(&self, unit: UnitId) -> Option<Ts> {
        match self.state.unit(unit)?.erasure {
            ErasureStatus::Active => None,
            ErasureStatus::ReversiblyInaccessible { since }
            | ErasureStatus::Deleted { since }
            | ErasureStatus::StronglyDeleted { since }
            | ErasureStatus::PermanentlyDeleted { since } => Some(since),
        }
    }

    /// The error for an access to a key whose row is physically absent:
    /// erased units report the erasure, anything else is a plain miss.
    fn gone(&self, key: u64, unit: UnitId) -> EngineError {
        match self.erased_since(unit) {
            Some(since) => EngineError::RetentionExpired { key, since },
            None => EngineError::NotFound { key },
        }
    }

    fn next_log(&mut self) -> u64 {
        self.log_seq += 1;
        self.log_seq
    }

    /// Audit sequence numbers issued so far (the frontend derives
    /// [`AuditRef`](crate::frontend::AuditRef)s from before/after pairs).
    pub(crate) fn log_seq(&self) -> u64 {
        self.log_seq
    }

    /// The current policy epoch: bumped by every policy-mutating action
    /// (grant, revocation, erasure, metadata update). Cached decisions
    /// stamped at an older epoch for a touched unit class are
    /// structurally unreachable.
    pub fn policy_epoch(&self) -> PolicyEpoch {
        self.enforcer.epoch()
    }

    /// Join an engine-wide [`EpochBus`]: global-class policy mutations
    /// made by this engine are published to the bus, and
    /// [`sync_epoch_bus`](CompliantDb::sync_epoch_bus) folds remote ones
    /// into the local epoch — the cross-shard half of decision-cache
    /// invalidation in a sharded engine.
    pub(crate) fn attach_epoch_bus(&mut self, bus: EpochBus) {
        self.enforcer.attach_bus(bus);
    }

    /// Observe the engine-wide [`EpochBus`] before deciding a batch: if
    /// another shard published a global-class mutation since the last
    /// sync, the local epoch bumps and every cached global-class decision
    /// is stranded. One atomic load when nothing changed.
    pub(crate) fn sync_epoch_bus(&mut self) {
        self.enforcer.sync_bus();
    }

    /// The persistent apply-stage AES worker pool, if fan-out is possible.
    pub(crate) fn pool(&self) -> Option<&CipherPool> {
        self.pool.as_ref()
    }

    /// Minimum distinct span bytes before apply-stage AES fans out.
    pub(crate) fn fanout_bytes(&self) -> usize {
        self.config.pipeline_fanout_bytes
    }

    /// Live decision-cache entries (tests).
    #[cfg(test)]
    pub(crate) fn cached_decisions(&self) -> usize {
        self.decisions.len()
    }

    /// Route a fully-charged record into the log: straight into the
    /// store normally, or onto the deferred queue during a pipelined
    /// span. Queue order equals sequence order, so the chain extends
    /// identically either way.
    fn push_record(&mut self, rec: LogRecord) {
        if self.deferred {
            self.pending_log.push(rec);
        } else {
            self.logger.append_precharged(rec);
        }
    }

    /// Enter or leave deferred-append mode (the pipeline driver flushes
    /// the queue before leaving).
    pub(crate) fn set_deferred(&mut self, deferred: bool) {
        debug_assert!(
            deferred || self.pending_log.is_empty(),
            "flush before leaving"
        );
        self.deferred = deferred;
        self.backend.set_deferred_sector_crypto(deferred);
    }

    /// Patch a deferred record's payload (decrypted by the apply stage).
    pub(crate) fn fill_deferred(&mut self, slot: usize, payload: Vec<u8>) {
        self.pending_log[slot].payload = payload;
    }

    /// Commit the deferred queue to the log store in sequence order (the
    /// pipeline's account stage).
    ///
    /// When the logger encrypts payloads at rest (P_SYS), the AES runs
    /// *here*, fanned out across the apply-stage workers, instead of
    /// serially inside every append: each queued record's payload is
    /// transformed with the logger's shared cipher schedule under
    /// `iv_from_nonce(seq)` — deterministic, so the committed bytes (and
    /// the tamper-evidence chain) are identical to serial execution —
    /// and committed via [`AuditLogger::append_ciphered`]. Costs were
    /// charged at op time either way.
    pub(crate) fn commit_deferred(&mut self) {
        let cipher = match self.logger.payload_cipher() {
            // No at-rest payload cipher, or no pool to fan out over
            // (single-core host): append_precharged does the right thing
            // inline — same bytes, no job round-trip.
            Some(c) if self.pool.is_some() => c,
            _ => {
                for rec in std::mem::take(&mut self.pending_log) {
                    self.logger.append_precharged(rec);
                }
                return;
            }
        };
        let mut jobs: Vec<CipherJob> = self
            .pending_log
            .iter_mut()
            .enumerate()
            .filter(|(_, rec)| !rec.payload.is_empty())
            .map(|(slot, rec)| CipherJob {
                slot,
                // Every record seq is unique: jobs spread round-robin
                // over the workers and the dedup pass never coalesces.
                shard: rec.seq,
                cipher: std::sync::Arc::clone(&cipher),
                iv: AesCtr::iv_from_nonce(rec.seq),
                data: std::mem::take(&mut rec.payload),
            })
            .collect();
        crate::exec::run_jobs(
            &mut jobs,
            self.pool.as_ref(),
            self.config.pipeline_fanout_bytes,
            // One job per unique record seq: nothing to dedup.
            false,
        );
        for job in jobs {
            self.pending_log[job.slot].payload = job.data;
        }
        for rec in std::mem::take(&mut self.pending_log) {
            self.logger.append_ciphered(rec);
        }
    }

    /// Build the next audit record: the sequence number is assigned
    /// here, so record-creation order is sequence order on every path
    /// (serial and staged alike).
    fn new_record(
        &mut self,
        at: Ts,
        unit: Option<UnitId>,
        entity: EntityId,
        purpose: PurposeId,
        op: &str,
        payload: Vec<u8>,
    ) -> LogRecord {
        LogRecord {
            seq: self.next_log(),
            at,
            unit,
            entity,
            purpose,
            op: op.to_owned(),
            payload,
            redacted: false,
        }
    }

    fn log(
        &mut self,
        unit: Option<UnitId>,
        entity: EntityId,
        purpose: PurposeId,
        op: &str,
        payload: &[u8],
    ) {
        let now = self.clock.now();
        let rec = self.new_record(now, unit, entity, purpose, op, payload.to_vec());
        self.logger.charge(&rec, rec.payload.len());
        self.push_record(rec);
    }

    /// The decide stage for one access: resolve through the
    /// epoch-versioned decision cache, evaluating the enforcer only on a
    /// miss. On denial the (already-charged) DENIED audit record is
    /// handed back to the caller, who appends it immediately (serial
    /// path) or defers it to the account stage (wave path) — either way
    /// it joins the log at the sequence number assigned here.
    fn decide(
        &mut self,
        unit: UnitId,
        entity: EntityId,
        purpose: PurposeId,
        action: ActionKind,
    ) -> Result<(), Box<DeniedAccess>> {
        if self.config.profile == ProfileKind::Stock {
            return Ok(()); // vanilla engine: no enforcement at all
        }
        let now = self.clock.now();
        let key = (self.enforcer.unit_class(unit), entity, purpose, action);
        if self.decisions.enabled() {
            if let Some(cached) = self.decisions.lookup(&key, &self.enforcer, now) {
                match &cached.deny_reason {
                    None => return Ok(()),
                    Some(reason) => {
                        // A cached denial skips re-evaluation but still
                        // answers for its work: the denial is metered and
                        // re-logged with its cached reason.
                        let reason = reason.clone();
                        Meter::bump(&self.meter.denials, 1);
                        return Err(self.denied_record(unit, entity, purpose, reason));
                    }
                }
            }
        }
        let req = AccessRequest {
            unit,
            entity,
            purpose,
            action,
            at: now,
        };
        let stamped = self.enforcer.decide_at(self.enforcer.epoch(), &req);
        let deny_reason = match &stamped.decision {
            Decision::Allow => None,
            Decision::Deny(reason) => Some(reason.clone()),
        };
        if self.decisions.enabled() {
            self.decisions.insert(
                key,
                CachedDecision {
                    epoch: stamped.epoch,
                    until: stamped.valid_until,
                    deny_reason: deny_reason.clone(),
                },
                &self.enforcer,
                now,
            );
        }
        match deny_reason {
            None => Ok(()),
            Some(reason) => Err(self.denied_record(unit, entity, purpose, reason)),
        }
    }

    /// Account a denial: bump the counter, assign the audit sequence
    /// number, and charge the DENIED record the caller will append.
    fn denied_record(
        &mut self,
        unit: UnitId,
        entity: EntityId,
        purpose: PurposeId,
        reason: String,
    ) -> Box<DeniedAccess> {
        self.denied += 1;
        let now = self.clock.now();
        let rec = self.new_record(
            now,
            Some(unit),
            entity,
            purpose,
            "DENIED",
            reason.clone().into_bytes(),
        );
        self.logger.charge(&rec, rec.payload.len());
        Box::new(DeniedAccess {
            error: EngineError::Denied { reason },
            record: rec,
        })
    }

    /// [`decide`](CompliantDb::decide) with the denial's audit record
    /// routed into the log immediately (store or deferred queue).
    fn check(
        &mut self,
        unit: UnitId,
        entity: EntityId,
        purpose: PurposeId,
        action: ActionKind,
    ) -> Result<(), EngineError> {
        match self.decide(unit, entity, purpose, action) {
            Ok(()) => Ok(()),
            Err(denied) => {
                self.push_record(denied.record);
                Err(denied.error)
            }
        }
    }

    fn encrypt_payload(&mut self, unit: UnitId, payload: &[u8]) -> Vec<u8> {
        match &mut self.vault {
            Some(vault) => {
                vault.ensure_key(unit.0);
                let bits = vault.key_size().bits();
                // Charged as a full AES pass regardless of how the
                // keystream is produced: the cache changes host work,
                // never the simulated cost.
                self.clock
                    .charge(self.clock.model().aes_cost(bits, payload.len()));
                Meter::bump(&self.meter.crypto_bytes, payload.len() as u64);
                let mut buf = payload.to_vec();
                let iv = AesCtr::iv_from_nonce(unit.0);
                if !matches!(vault.keystream_apply(unit.0, iv, &mut buf), Ok(true)) {
                    let cipher = vault.cipher(unit.0).expect("just ensured");
                    cipher.apply(iv, &mut buf);
                }
                buf
            }
            None => payload.to_vec(),
        }
    }

    fn decrypt_payload(&mut self, unit: UnitId, stored: Vec<u8>) -> Vec<u8> {
        match &mut self.vault {
            Some(vault) => match vault.cipher(unit.0) {
                Ok(cipher) => {
                    let bits = cipher.key_size().bits();
                    self.clock
                        .charge(self.clock.model().aes_cost(bits, stored.len()));
                    Meter::bump(&self.meter.crypto_bytes, stored.len() as u64);
                    let mut buf = stored;
                    let iv = AesCtr::iv_from_nonce(unit.0);
                    if !matches!(vault.keystream_apply(unit.0, iv, &mut buf), Ok(true)) {
                        cipher.apply(iv, &mut buf);
                    }
                    buf
                }
                Err(_) => Vec::new(), // crypto-erased: unreadable
            },
            None => stored,
        }
    }

    /// Execute one request as `actor` under an optional declared purpose.
    ///
    /// This is the crate-internal execution entry the
    /// [`Frontend`](crate::frontend::Frontend) choke point drives; it is
    /// deliberately not `pub`.
    pub(crate) fn apply(
        &mut self,
        request: &Request,
        actor: Actor,
        purpose: Option<PurposeId>,
        scope: Option<datacase_core::tenant::KeyRange>,
    ) -> Result<Reply, EngineError> {
        if !matches!(request, Request::Erase { .. } | Request::Restore { .. }) {
            // Workload ops drive the checkpoint cadence; the compliance
            // path (erase/restore) never did and still does not.
            self.tick_cadence();
        }
        match request {
            Request::Create {
                key,
                payload,
                metadata,
            } => self.op_create(*key, payload, metadata),
            Request::Read { key } => self.op_read(*key, actor, purpose),
            Request::Update { key, payload } => self.op_update(*key, payload, actor, purpose),
            Request::Delete { key } => self.op_delete(*key, actor),
            Request::ReadMeta { key } => self.op_read_meta(*key, actor, purpose),
            Request::UpdateMeta { key, field } => self.op_update_meta(*key, *field, actor),
            Request::ReadByMeta { selector } => self.op_read_by_meta(*selector, purpose, scope),
            Request::Erase {
                key,
                interpretation,
            } => self.op_erase(*key, *interpretation, actor),
            Request::Restore { key } => self.op_restore(*key, actor),
        }
    }

    /// One workload operation's worth of checkpoint cadence (flush + WAL
    /// recycle every `checkpoint_every` ops). The pipeline's wave pass
    /// calls this per staged read; [`apply`](CompliantDb::apply) calls it
    /// for every serial workload op.
    pub(crate) fn tick_cadence(&mut self) {
        self.ops_since_checkpoint += 1;
        if self.ops_since_checkpoint >= self.config.checkpoint_every {
            self.ops_since_checkpoint = 0;
            self.backend.checkpoint();
            self.backend.recycle_logs();
        }
    }

    /// The compliance erase path.
    ///
    /// Erasure is the one request whose entitlement never lapses: the
    /// subject's right to erasure and the controller's retention duty
    /// hold regardless of the unit's policy state — the policies may
    /// already be revoked (a prior, weaker erasure being escalated) or
    /// expired (an overdue unit must stay erasable). Processors have
    /// neither right nor duty; their erase requests go through policy
    /// enforcement like any other action and are denied (with an audit
    /// record) unless a policy explicitly grants them `Erase`.
    fn op_erase(
        &mut self,
        key: u64,
        interpretation: ErasureInterpretation,
        actor: Actor,
    ) -> Result<Reply, EngineError> {
        let Some(meta) = self.key_meta.get(&key).copied() else {
            return Err(EngineError::NotFound { key });
        };
        let entity = self.actor_entity(actor, meta.subject);
        if actor == Actor::Processor {
            self.check(meta.unit, entity, wk::compliance_erase(), ActionKind::Erase)?;
        }
        if crate::erasure::erase_now(self, key, interpretation, entity) {
            Ok(Reply::Erased(interpretation))
        } else {
            Err(EngineError::NotFound { key })
        }
    }

    /// The inverse compliance action. Restoration cannot be checked
    /// against unit policies (they were revoked with the erasure), so it
    /// is gated on the actor: the subject reclaiming their data or the
    /// controller handling their request — never a processor.
    fn op_restore(&mut self, key: u64, actor: Actor) -> Result<Reply, EngineError> {
        if self.unit_of_key(key).is_none() {
            return Err(EngineError::NotFound { key });
        }
        if actor == Actor::Processor {
            return Err(EngineError::Denied {
                reason: "processors cannot restore erased records".into(),
            });
        }
        if crate::erasure::restore_now(self, key) {
            Ok(Reply::Restored)
        } else {
            Err(EngineError::Denied {
                reason: "unit is not reversibly inaccessible".into(),
            })
        }
    }

    fn op_create(
        &mut self,
        key: u64,
        payload: &[u8],
        metadata: &datacase_workloads::record::GdprMetadata,
    ) -> Result<Reply, EngineError> {
        if let Some(meta) = self.key_meta.get(&key) {
            // Duplicate key in the stream. An erased key stays bound to
            // its (dead) unit — re-collection is a retention question,
            // not a constraint violation.
            let unit = meta.unit;
            return Err(match self.erased_since(unit) {
                Some(since) => EngineError::RetentionExpired { key, since },
                None => EngineError::Backend {
                    detail: format!("key {key} already exists"),
                },
            });
        }
        let now = self.clock.now();
        let subject_e = self.actor_entity(Actor::Subject, metadata.subject);
        let unit = self.state.collect(
            subject_e,
            Origin::Device(format!("dev-{}", metadata.origin_device)),
            Value::Bytes(payload.to_vec()),
            now,
        );
        // Base policy set (also the model's ground truth for G6/G17).
        let ttl = metadata.ttl;
        let base_policies = vec![
            Policy::open_ended(wk::subject_access(), subject_e, now),
            Policy::new(wk::compliance_erase(), subject_e, now, ttl),
            Policy::new(wk::compliance_erase(), self.controller, now, ttl),
            Policy::open_ended(wk::contract(), self.controller, now),
            Policy::open_ended(wk::contract(), subject_e, now),
            Policy::new(metadata.purpose, self.processor, now, ttl),
            Policy::new(metadata.purpose, self.controller, now, ttl),
            Policy::new(wk::retention(), self.processor, now, ttl),
            Policy::open_ended(wk::audit(), self.auditor, now),
        ];
        {
            let u = self.state.unit_mut(unit).expect("just collected");
            for p in &base_policies {
                u.policies.grant(*p, now);
            }
            u.encrypted_at_rest = self.config.encryption_at_rest();
        }
        // The enforcer sees base policies plus profile-dependent padding
        // (finer-grained slicing in P_SYS — Sieve metadata volume).
        let mut enforcer_policies = base_policies;
        while enforcer_policies.len() < self.config.policies_per_unit {
            let i = enforcer_policies.len() as u64;
            enforcer_policies.push(Policy::new(
                wk::analytics(),
                self.processor,
                now,
                Ts(now.0.saturating_add(1 + i)),
            ));
        }
        self.enforcer.register_unit(unit, &enforcer_policies);
        // Physical insert (encrypted per profile).
        let stored = self.encrypt_payload(unit, payload);
        if let Err(e) = self.backend.insert(key, unit.0, &stored) {
            return Err(EngineError::Backend {
                detail: e.to_string(),
            });
        }
        // Bookkeeping.
        self.key_meta.insert(
            key,
            KeyMeta {
                unit,
                subject: metadata.subject,
                purpose: metadata.purpose,
                ttl,
            },
        );
        self.unit_key.insert(unit, key);
        self.by_purpose
            .entry(metadata.purpose)
            .or_default()
            .insert(key);
        self.by_subject
            .entry(metadata.subject)
            .or_default()
            .insert(key);
        // Model + audit records (consent capture: the paper's CtrC tuple).
        self.history.record(HistoryTuple {
            unit,
            purpose: wk::contract(),
            entity: self.controller,
            action: Action::Create,
            at: now,
        });
        self.log(
            Some(unit),
            self.controller,
            wk::contract(),
            "INSERT",
            payload,
        );
        Ok(Reply::Done)
    }

    fn op_read(
        &mut self,
        key: u64,
        actor: Actor,
        declared: Option<PurposeId>,
    ) -> Result<Reply, EngineError> {
        let staged = self.stage_read(key, actor, declared);
        self.finish_staged(staged)
    }

    /// The decide/charge half of a point read (the pipeline's serial
    /// pass). Policy check, storage read, decrypt *charges*, history and
    /// audit accounting all happen here, in submission order; the AES
    /// work itself is returned as a [`CipherJob`] for the apply stage.
    /// AES-CTR preserves length, so the reply is complete without it.
    pub(crate) fn stage_read(
        &mut self,
        key: u64,
        actor: Actor,
        declared: Option<PurposeId>,
    ) -> StagedRead {
        let Some(meta) = self.key_meta.get(&key).copied() else {
            return StagedRead::fail(EngineError::NotFound { key });
        };
        let purpose = declared.unwrap_or(match actor {
            Actor::Subject => wk::subject_access(),
            _ => meta.purpose,
        });
        let entity = self.actor_entity(actor, meta.subject);
        if let Err(denied) = self.decide(meta.unit, entity, purpose, ActionKind::Read) {
            return StagedRead {
                outcome: Err(denied.error),
                pending: Some(denied.record),
                job: None,
            };
        }
        let Some(stored) = self.backend.read(key, false) else {
            return StagedRead::fail(self.gone(key, meta.unit));
        };
        // Decrypt accounting now, AES work deferred.
        let mut payload = Vec::new();
        let mut job = None;
        let plain_len = match &mut self.vault {
            Some(vault) => match vault.cipher(meta.unit.0) {
                Ok(cipher) => {
                    let bits = cipher.key_size().bits();
                    self.clock
                        .charge(self.clock.model().aes_cost(bits, stored.len()));
                    Meter::bump(&self.meter.crypto_bytes, stored.len() as u64);
                    let len = stored.len();
                    let iv = AesCtr::iv_from_nonce(meta.unit.0);
                    let mut data = stored;
                    if matches!(vault.keystream_apply(meta.unit.0, iv, &mut data), Ok(true)) {
                        // Hot-tuple cache hit: the decrypt collapsed to a
                        // XOR, so there is no AES left worth deferring —
                        // the record carries its payload immediately.
                        payload = data;
                    } else {
                        job = Some(CipherJob {
                            slot: 0, // assigned when the record is queued
                            shard: meta.unit.0,
                            iv,
                            cipher,
                            data,
                        });
                    }
                    len
                }
                Err(_) => 0, // crypto-erased: unreadable
            },
            None => {
                payload = stored;
                payload.len()
            }
        };
        let now = self.clock.now();
        self.history.record(HistoryTuple {
            unit: meta.unit,
            purpose,
            entity,
            action: Action::Read,
            at: now,
        });
        let rec = self.new_record(now, Some(meta.unit), entity, purpose, "SELECT", payload);
        self.logger.charge(&rec, plain_len);
        StagedRead {
            outcome: Ok(Reply::Value(plain_len)),
            pending: Some(rec),
            job,
        }
    }

    /// Run a staged read to completion inline (serial execution): do the
    /// deferred AES work and route the audit record into the log
    /// immediately.
    fn finish_staged(&mut self, staged: StagedRead) -> Result<Reply, EngineError> {
        let StagedRead {
            outcome,
            pending,
            job,
        } = staged;
        if let Some(mut rec) = pending {
            if let Some(mut job) = job {
                job.run();
                rec.payload = job.data;
            }
            self.push_record(rec);
        }
        outcome
    }

    /// A point read within a pipelined span: the audit record joins the
    /// deferred queue with its payload still encrypted, and the AES work
    /// comes back as a [`CipherJob`] addressing that queue slot.
    pub(crate) fn read_deferred(
        &mut self,
        key: u64,
        actor: Actor,
        declared: Option<PurposeId>,
    ) -> (Result<Reply, EngineError>, Option<CipherJob>) {
        let staged = self.stage_read(key, actor, declared);
        self.defer_staged(staged)
    }

    /// A metadata read within a pipelined span (no payload work — only
    /// the record append is deferred, preserving queue order).
    pub(crate) fn read_meta_deferred(
        &mut self,
        key: u64,
        actor: Actor,
        declared: Option<PurposeId>,
    ) -> (Result<Reply, EngineError>, Option<CipherJob>) {
        let staged = self.stage_read_meta(key, actor, declared);
        self.defer_staged(staged)
    }

    fn defer_staged(
        &mut self,
        staged: StagedRead,
    ) -> (Result<Reply, EngineError>, Option<CipherJob>) {
        debug_assert!(self.deferred, "deferred reads require span mode");
        let StagedRead {
            outcome,
            pending,
            mut job,
        } = staged;
        if let Some(rec) = pending {
            let slot = self.pending_log.len();
            self.pending_log.push(rec);
            if let Some(job) = &mut job {
                job.slot = slot;
            }
        }
        (outcome, job)
    }

    fn op_update(
        &mut self,
        key: u64,
        payload: &[u8],
        actor: Actor,
        declared: Option<PurposeId>,
    ) -> Result<Reply, EngineError> {
        let Some(meta) = self.key_meta.get(&key).copied() else {
            return Err(EngineError::NotFound { key });
        };
        let purpose = declared.unwrap_or(match actor {
            Actor::Subject => wk::subject_access(),
            _ => meta.purpose,
        });
        let entity = self.actor_entity(actor, meta.subject);
        self.check(meta.unit, entity, purpose, ActionKind::UpdateValue)?;
        let stored = self.encrypt_payload(meta.unit, payload);
        if self.backend.update(key, &stored).is_err() {
            return Err(self.gone(key, meta.unit));
        }
        let now = self.clock.now();
        if let Some(u) = self.state.unit_mut(meta.unit) {
            u.value.write(now, Value::Bytes(payload.to_vec()));
        }
        self.history.record(HistoryTuple {
            unit: meta.unit,
            purpose,
            entity,
            action: Action::UpdateValue,
            at: now,
        });
        self.log(Some(meta.unit), entity, purpose, "UPDATE", payload);
        Ok(Reply::Done)
    }

    fn op_delete(&mut self, key: u64, actor: Actor) -> Result<Reply, EngineError> {
        let Some(meta) = self.key_meta.get(&key).copied() else {
            return Err(EngineError::NotFound { key });
        };
        let entity = self.actor_entity(actor, meta.subject);
        self.check(meta.unit, entity, wk::compliance_erase(), ActionKind::Erase)?;
        let (interp, ok) = match self.config.delete_strategy {
            DeleteStrategy::TombstoneAttribute => (
                ErasureInterpretation::ReversiblyInaccessible,
                self.backend.set_hidden(key, true).is_ok(),
            ),
            _ => (
                ErasureInterpretation::Deleted,
                self.backend.delete(key).is_ok(),
            ),
        };
        if !ok {
            return Err(self.gone(key, meta.unit));
        }
        let now = self.clock.now();
        let status = match interp {
            ErasureInterpretation::ReversiblyInaccessible => {
                ErasureStatus::ReversiblyInaccessible { since: now }
            }
            _ => ErasureStatus::Deleted { since: now },
        };
        self.state.mark_erased(meta.unit, status, now);
        if let Some(u) = self.state.unit_mut(meta.unit) {
            u.policies.revoke_all(now);
        }
        // Revocation bumps the policy epoch, stranding any cached
        // decisions for the unit's class — no explicit cache flush.
        self.enforcer.revoke_all(meta.unit, now);
        if self.config.delete_logs_on_erase {
            self.logger.redact_unit(meta.unit);
        }
        self.history.record(HistoryTuple {
            unit: meta.unit,
            purpose: wk::compliance_erase(),
            entity,
            action: Action::Erase(interp),
            at: now,
        });
        self.log(
            Some(meta.unit),
            entity,
            wk::compliance_erase(),
            "DELETE",
            &[],
        );
        // Index maintenance. `key_meta` is deliberately retained: a real
        // database does not know a key is gone until it probes the index
        // and heap, so post-delete reads must pay that path (the Figure-4a
        // mechanism). Only the metadata-scan indexes forget the key.
        if let Some(s) = self.by_purpose.get_mut(&meta.purpose) {
            s.remove(&key);
        }
        if let Some(s) = self.by_subject.get_mut(&meta.subject) {
            s.remove(&key);
        }
        self.deletes_since_maintenance += 1;
        if self.deletes_since_maintenance >= self.config.maintenance_every {
            self.run_maintenance();
        }
        Ok(Reply::Done)
    }

    /// Run the delete strategy's periodic maintenance now, mapped to the
    /// backend's mechanics (heap: VACUUM / VACUUM FULL; LSM: flush /
    /// full compaction).
    pub(crate) fn run_maintenance(&mut self) {
        self.deletes_since_maintenance = 0;
        match self.config.delete_strategy {
            DeleteStrategy::DeleteVacuum => {
                self.backend.maintain(MaintenanceDepth::Lazy);
            }
            DeleteStrategy::DeleteVacuumFull => {
                self.backend.maintain(MaintenanceDepth::Full);
            }
            DeleteStrategy::DeleteOnly | DeleteStrategy::TombstoneAttribute => {}
        }
    }

    fn op_read_meta(
        &mut self,
        key: u64,
        actor: Actor,
        declared: Option<PurposeId>,
    ) -> Result<Reply, EngineError> {
        let staged = self.stage_read_meta(key, actor, declared);
        self.finish_staged(staged)
    }

    /// The decide/charge half of a metadata read. No payload work to
    /// defer (the row rendering is cheap); only the audit-record append
    /// moves to the account stage, keeping the wave's log order intact.
    pub(crate) fn stage_read_meta(
        &mut self,
        key: u64,
        actor: Actor,
        declared: Option<PurposeId>,
    ) -> StagedRead {
        let Some(meta) = self.key_meta.get(&key).copied() else {
            return StagedRead::fail(EngineError::NotFound { key });
        };
        if let Some(since) = self.erased_since(meta.unit) {
            // The record's metadata row went with the record.
            return StagedRead::fail(EngineError::RetentionExpired { key, since });
        }
        let (entity, purpose) = match actor {
            Actor::Subject => (
                self.actor_entity(Actor::Subject, meta.subject),
                declared.unwrap_or(wk::subject_access()),
            ),
            Actor::Controller => (self.controller, declared.unwrap_or(wk::contract())),
            Actor::Processor => (self.processor, declared.unwrap_or(meta.purpose)),
        };
        if let Err(denied) = self.decide(meta.unit, entity, purpose, ActionKind::ReadMeta) {
            return StagedRead {
                outcome: Err(denied.error),
                pending: Some(denied.record),
                job: None,
            };
        }
        // The metadata row itself: policies + provenance summary.
        let policies = self
            .state
            .unit(meta.unit)
            .map(|u| u.policies.active_at(self.clock.now()).len())
            .unwrap_or(0);
        let now = self.clock.now();
        self.history.record(HistoryTuple {
            unit: meta.unit,
            purpose,
            entity,
            action: Action::ReadMeta,
            at: now,
        });
        let rendered = format!(
            "key={key} subject={} purpose={} ttl={} policies={policies}",
            meta.subject, meta.purpose, meta.ttl
        );
        let rec = self.new_record(
            now,
            Some(meta.unit),
            entity,
            purpose,
            "SELECT-META",
            rendered.into_bytes(),
        );
        self.logger.charge(&rec, rec.payload.len());
        StagedRead {
            outcome: Ok(Reply::Value(rec.payload.len())),
            pending: Some(rec),
            job: None,
        }
    }

    fn op_update_meta(
        &mut self,
        key: u64,
        field: MetaField,
        actor: Actor,
    ) -> Result<Reply, EngineError> {
        let Some(meta) = self.key_meta.get(&key).copied() else {
            return Err(EngineError::NotFound { key });
        };
        if let Some(since) = self.erased_since(meta.unit) {
            return Err(EngineError::RetentionExpired { key, since });
        }
        let entity = self.actor_entity(actor, meta.subject);
        self.check(meta.unit, entity, wk::contract(), ActionKind::UpdatePolicy)?;
        let now = self.clock.now();
        // Apply the policy change to the model + enforcer.
        let new_policy = match field {
            MetaField::Ttl => {
                let new_ttl = Ts(meta.ttl.0.saturating_add(86_400_000_000_000)); // +1 day
                if let Some(km) = self.key_meta.get_mut(&key) {
                    km.ttl = new_ttl;
                }
                Policy::new(wk::compliance_erase(), self.controller, now, new_ttl)
            }
            MetaField::Purpose => Policy::new(
                wk::analytics(),
                self.processor,
                now,
                Ts(now.0.saturating_add(30 * 86_400_000_000_000)),
            ),
            MetaField::Objection => {
                // Objection: revoke sharing-ish access for the third party.
                if let Some(u) = self.state.unit_mut(meta.unit) {
                    u.policies.revoke(wk::advertising(), self.third_party, now);
                }
                Policy::new(wk::audit(), self.auditor, now, Ts::MAX)
            }
        };
        if let Some(u) = self.state.unit_mut(meta.unit) {
            u.policies.grant(new_policy, now);
        }
        // The grant bumps the policy epoch: cached denials for this
        // unit's class are re-evaluated on their next use.
        self.enforcer.grant(meta.unit, new_policy);
        // The metadata-row update is a durable write like any other
        // statement (the paper: "such operations require more metadata
        // access and logging").
        let model = self.clock.model().clone();
        self.clock.charge(model.log_cost(64));
        self.clock.charge_nanos(model.txn_overhead + model.fsync);
        self.history.record(HistoryTuple {
            unit: meta.unit,
            purpose: wk::contract(),
            entity,
            action: Action::UpdatePolicy,
            at: now,
        });
        // Invariant VIII: notify the subject of the policy change.
        let now2 = self.clock.now();
        self.history.record(HistoryTuple {
            unit: meta.unit,
            purpose: wk::contract(),
            entity: self.controller,
            action: Action::Notify,
            at: now2,
        });
        self.log(
            Some(meta.unit),
            entity,
            wk::contract(),
            "UPDATE-META+NOTIFY",
            format!("{field:?}").as_bytes(),
        );
        Ok(Reply::Done)
    }

    fn op_read_by_meta(
        &mut self,
        selector: MetaSelector,
        declared: Option<PurposeId>,
        scope: Option<datacase_core::tenant::KeyRange>,
    ) -> Result<Reply, EngineError> {
        const SCAN_CAP: usize = 20;
        // A scoped session only ever sees its own block of the keyspace:
        // candidates outside it are filtered before costing, capping, and
        // enforcement, so another tenant's records are invisible even to
        // metadata probes.
        let in_scope = |key: &u64| scope.map(|r| r.contains(*key)).unwrap_or(true);
        let keys: Vec<u64> = match selector {
            MetaSelector::ByPurpose(p) => self
                .by_purpose
                .get(&p)
                .map(|s| s.iter().copied().filter(in_scope).take(SCAN_CAP).collect())
                .unwrap_or_default(),
            MetaSelector::BySubject(s) => self
                .by_subject
                .get(&s)
                .map(|set| {
                    set.iter()
                        .copied()
                        .filter(in_scope)
                        .take(SCAN_CAP)
                        .collect()
                })
                .unwrap_or_default(),
        };
        // Metadata-index probe cost.
        self.clock
            .charge_nanos(self.clock.model().index_probe * (1 + keys.len() as u64));
        Meter::bump(&self.meter.index_probes, 1 + keys.len() as u64);
        let mut rows = 0usize;
        for key in keys {
            let Some(meta) = self.key_meta.get(&key).copied() else {
                continue;
            };
            // Processor reads each matching record under its collection
            // purpose (or the session's declared one); enforcement is
            // per-record (FGAC pays per tuple).
            let purpose = declared.unwrap_or(meta.purpose);
            if self
                .check(meta.unit, self.processor, purpose, ActionKind::Read)
                .is_err()
            {
                continue;
            }
            if let Some(stored) = self.backend.read(key, false) {
                let plain = self.decrypt_payload(meta.unit, stored);
                self.history.record(HistoryTuple {
                    unit: meta.unit,
                    purpose,
                    entity: self.processor,
                    action: Action::Read,
                    at: self.clock.now(),
                });
                let _ = plain;
                rows += 1;
            }
        }
        let entity = self.processor;
        self.log(
            None,
            entity,
            wk::retention(),
            "SELECT-BY-META",
            format!("{selector:?} rows={rows}").as_bytes(),
        );
        Ok(Reply::Rows(rows))
    }

    // ------------------------------------------------------------------
    // Compliance-facing surface
    // ------------------------------------------------------------------

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The shared meter.
    pub fn meter(&self) -> &Arc<Meter> {
        &self.meter
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The abstract Data-CASE state.
    pub fn state(&self) -> &DatabaseState {
        &self.state
    }

    /// Mutable access to the abstract state (forensic guard / probes).
    pub(crate) fn state_mut(&mut self) -> &mut DatabaseState {
        &mut self.state
    }

    /// The action history.
    pub fn history(&self) -> &ActionHistory {
        &self.history
    }

    /// The purpose registry.
    pub fn purposes(&self) -> &PurposeRegistry {
        &self.purposes
    }

    /// The entity registry.
    pub fn entities(&self) -> &EntityRegistry {
        &self.entities
    }

    /// The controller entity.
    pub fn controller(&self) -> EntityId {
        self.controller
    }

    /// The processor entity.
    pub fn processor(&self) -> EntityId {
        self.processor
    }

    /// Number of denied operations so far.
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// Unit id stored under a key.
    pub fn unit_of_key(&self, key: u64) -> Option<UnitId> {
        self.key_meta.get(&key).map(|m| m.unit)
    }

    /// Key a unit is stored under.
    pub fn key_of_unit(&self, unit: UnitId) -> Option<u64> {
        self.unit_key.get(&unit).copied()
    }

    /// Backend statistics on the substrate-independent vocabulary.
    pub fn backend_stats(&self) -> BackendStats {
        self.backend.stats()
    }

    /// Direct backend access (erasure executor, forensic guard).
    pub(crate) fn backend_mut(&mut self) -> &mut dyn StorageBackend {
        self.backend.as_mut()
    }

    /// The policy enforcer (read-only).
    pub fn enforcer(&self) -> &dyn PolicyEnforcer {
        self.enforcer.inner()
    }

    /// Mutable access to the versioned enforcer (erasure executor) —
    /// mutations through it bump the policy epoch.
    pub(crate) fn enforcer_mut(&mut self) -> &mut VersionedEnforcer {
        &mut self.enforcer
    }

    /// The audit logger (read-only).
    pub fn logger(&self) -> &dyn AuditLogger {
        self.logger.as_ref()
    }

    /// Mutable logger access (erasure executor, forensic guard).
    pub(crate) fn logger_mut(&mut self) -> &mut dyn AuditLogger {
        self.logger.as_mut()
    }

    /// The key vault, when tuple encryption is on.
    pub(crate) fn vault_mut(&mut self) -> Option<&mut KeyVault> {
        self.vault.as_mut()
    }

    /// Record an externally produced history tuple (erasure executor,
    /// violation injection via the forensic guard).
    pub(crate) fn record_history(&mut self, tuple: HistoryTuple) {
        self.history.record(tuple);
    }

    /// Bind a heap key to a *derived* unit created through
    /// `DatabaseState::derive`, so erasure cascades can find its row.
    pub(crate) fn bind_derived_key(&mut self, unit: UnitId, key: u64) {
        self.key_meta.insert(
            key,
            KeyMeta {
                unit,
                subject: u32::MAX,
                purpose: wk::analytics(),
                ttl: Ts::MAX,
            },
        );
        self.unit_key.insert(unit, key);
    }

    /// Forensic scan of all persistent layers for `needle` (checkpoints
    /// the backend first so the scan sees buffered state — flushed pages
    /// on the heap, a flushed memtable on the LSM).
    pub(crate) fn forensic(&mut self, needle: &[u8]) -> ForensicFindings {
        self.backend.checkpoint();
        let mut findings = self.backend.scan_physical(needle);
        // The audit logs are a persistence layer too.
        let log_hits = self.logger.scan(needle);
        if log_hits > 0 {
            // Fold into the WAL bucket: both are log-shaped retention.
            findings
                .wal_lsns
                .extend(std::iter::repeat_n(u64::MAX, log_hits));
        }
        findings
    }

    /// Run the compliance checker against this engine's model.
    ///
    /// The engine knows which tenant every registered subject belongs to
    /// (the subject number carries it — see
    /// [`datacase_core::tenant::TenantId::of_subject`]), so it supplies a
    /// [`datacase_core::tenant::TenantDirectory`] arming the
    /// tenant-isolation invariant X. Single-tenant engines assign every
    /// subject to tenant 0 and X degenerates to the vacuous case of one
    /// partition class.
    pub fn compliance_report(&mut self, regulation: &Regulation) -> ComplianceReport {
        let evidence = EvidenceFlags {
            audit_log_tamper_evident: self.logger.verify_chain(),
            encryption_at_rest_default: self.config.encryption_at_rest(),
        };
        let mut tenants = datacase_core::tenant::TenantDirectory::new();
        for (&subject, &entity) in &self.subject_entities {
            tenants.assign(entity, datacase_core::tenant::TenantId::of_subject(subject));
        }
        ComplianceChecker::new(regulation.clone())
            .with_evidence(evidence)
            .with_tenants(tenants)
            .check(&self.state, &self.history, &self.purposes, self.clock.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::{Frontend, Request, Session};
    use datacase_workloads::gdprbench::{GdprBench, Mix};
    use datacase_workloads::opstream::Op;

    fn small_db(profile: ProfileKind) -> (Frontend, GdprBench) {
        let mut config = EngineConfig::for_profile(profile);
        config.maintenance_every = 50;
        let fe = Frontend::new(config);
        let bench = GdprBench::new(42, 50);
        (fe, bench)
    }

    fn load(fe: &mut Frontend, bench: &mut GdprBench, n: usize) {
        let controller = Session::new(Actor::Controller);
        for r in fe.submit_ops(&controller, &bench.load_phase(n)) {
            assert!(r.is_done(), "load op failed: {:?}", r.outcome);
        }
    }

    #[test]
    fn load_and_read_roundtrip_all_profiles() {
        for profile in [
            ProfileKind::Stock,
            ProfileKind::PBase,
            ProfileKind::PGBench,
            ProfileKind::PSys,
        ] {
            let (mut fe, mut bench) = small_db(profile);
            load(&mut fe, &mut bench, 100);
            let r = fe.run(&Session::new(Actor::Processor), Request::Read { key: 5 });
            assert_eq!(r.value(), Some(100), "{profile:?}: {:?}", r.outcome);
        }
    }

    #[test]
    fn subject_reads_own_data() {
        let (mut fe, mut bench) = small_db(ProfileKind::PSys);
        load(&mut fe, &mut bench, 20);
        let r = fe.run(&Session::new(Actor::Subject), Request::Read { key: 3 });
        assert!(r.value().is_some(), "{:?}", r.outcome);
    }

    #[test]
    fn delete_then_read_is_typed_gone() {
        let (mut fe, mut bench) = small_db(ProfileKind::PBase);
        load(&mut fe, &mut bench, 20);
        assert!(fe
            .run(&Session::new(Actor::Subject), Request::Delete { key: 7 })
            .is_done());
        let r = fe.run(&Session::new(Actor::Processor), Request::Read { key: 7 });
        // P_Base enforces: the revoked policies deny before storage.
        let e = r.err().expect("must fail");
        assert!(
            e.is_denied() || e.is_retention_expired(),
            "post-delete read: {e:?}"
        );
    }

    #[test]
    fn workload_denies_only_post_erasure_accesses() {
        // Reads of deleted keys are *correctly* denied on enforcing
        // profiles (their policies were revoked with the erasure request);
        // everything else must be allowed.
        for profile in ProfileKind::PAPER {
            let (mut fe, mut bench) = small_db(profile);
            load(&mut fe, &mut bench, 200);
            let ops = bench.ops(500, Mix::wcus());
            let subject = Session::new(Actor::Subject);
            let mut deleted: std::collections::HashSet<u64> = Default::default();
            for op in &ops {
                let r = fe.run(&subject, Request::from(op));
                if let Op::DeleteData { key } = op {
                    deleted.insert(*key);
                }
                if r.is_denied() {
                    let key = op.key().expect("denied ops are key-addressed");
                    assert!(
                        deleted.contains(&key),
                        "{profile:?} denied op on live key {key}: {op:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn unauthorized_read_denied_on_enforcing_profiles() {
        for profile in [ProfileKind::PGBench, ProfileKind::PSys] {
            // Delete revokes policies; subsequent processor read on the
            // tombstone-kept key is policy-denied before storage is hit.
            let mut cfg = EngineConfig::for_profile(profile);
            cfg.delete_strategy = DeleteStrategy::TombstoneAttribute;
            let mut fe = Frontend::new(cfg);
            let mut bench = GdprBench::new(43, 20);
            load(&mut fe, &mut bench, 10);
            fe.run(&Session::new(Actor::Subject), Request::Delete { key: 2 });
            let r = fe.run(&Session::new(Actor::Processor), Request::Read { key: 2 });
            assert!(r.is_denied(), "{profile:?}: {:?}", r.outcome);
            assert!(fe.denied() > 0);
        }
    }

    #[test]
    fn profiles_have_ordered_costs() {
        let mut times = Vec::new();
        for profile in ProfileKind::PAPER {
            let (mut fe, mut bench) = small_db(profile);
            load(&mut fe, &mut bench, 300);
            let ops = bench.ops(600, Mix::wcus());
            let t0 = fe.clock().now();
            fe.submit_ops(&Session::new(Actor::Subject), &ops);
            times.push((profile, fe.clock().now().since(t0)));
        }
        assert!(
            times[0].1 < times[1].1 && times[1].1 < times[2].1,
            "expected P_Base < P_GBench < P_SYS, got {times:?}"
        );
    }

    #[test]
    fn compliance_report_is_clean_after_legitimate_run() {
        let (mut fe, mut bench) = small_db(ProfileKind::PSys);
        load(&mut fe, &mut bench, 50);
        let ops = bench.ops(100, Mix::wcus());
        fe.submit_ops(&Session::new(Actor::Subject), &ops);
        let report = fe.compliance_report(&Regulation::gdpr());
        assert!(
            report.is_compliant(),
            "violations: {:?}",
            &report.violations[..report.violations.len().min(5)]
        );
    }

    #[test]
    fn stock_profile_fails_design_security() {
        let (mut fe, mut bench) = small_db(ProfileKind::Stock);
        load(&mut fe, &mut bench, 10);
        let report = fe.compliance_report(&Regulation::gdpr());
        assert!(
            !report.of_invariant("VI").is_empty(),
            "no encryption at rest"
        );
    }

    #[test]
    fn forensic_finds_deleted_data_under_delete_only() {
        let mut config = EngineConfig::stock(DeleteStrategy::DeleteOnly);
        config.maintenance_every = u64::MAX;
        let mut fe = Frontend::new(config);
        let mut bench = GdprBench::new(9, 10);
        load(&mut fe, &mut bench, 10);
        // Grab the payload of key 4 for the needle.
        let needle = {
            let stored = fe.forensic().raw_read(4, true).unwrap();
            stored[..20].to_vec()
        };
        fe.run(&Session::new(Actor::Controller), Request::Delete { key: 4 });
        let f = fe.forensic().scan(&needle);
        assert!(f.online(), "DELETE leaves residuals: {}", f.describe());
    }

    #[test]
    fn lsm_backend_roundtrips_all_profiles() {
        for profile in [
            ProfileKind::Stock,
            ProfileKind::PBase,
            ProfileKind::PGBench,
            ProfileKind::PSys,
        ] {
            let mut config = EngineConfig::for_profile(profile).with_backend(BackendKind::Lsm);
            config.maintenance_every = 50;
            let mut fe = Frontend::new(config);
            let mut bench = GdprBench::new(42, 50);
            load(&mut fe, &mut bench, 100);
            let r = fe.run(&Session::new(Actor::Processor), Request::Read { key: 5 });
            assert_eq!(r.value(), Some(100), "{profile:?}/lsm: {:?}", r.outcome);
            assert!(fe
                .run(&Session::new(Actor::Subject), Request::Delete { key: 5 })
                .is_done());
            let r = fe.run(&Session::new(Actor::Processor), Request::Read { key: 5 });
            let e = r.err().expect("post-delete read must fail");
            assert!(
                e.is_denied() || e.is_retention_expired(),
                "{profile:?}/lsm post-delete: {e:?}"
            );
        }
    }

    #[test]
    fn lsm_backend_tombstone_strategy_is_reversibly_hidden() {
        let mut config =
            EngineConfig::stock(DeleteStrategy::TombstoneAttribute).with_backend(BackendKind::Lsm);
        config.maintenance_every = u64::MAX;
        let mut fe = Frontend::new(config);
        let mut bench = GdprBench::new(8, 20);
        load(&mut fe, &mut bench, 10);
        assert!(fe
            .run(&Session::new(Actor::Controller), Request::Delete { key: 3 })
            .is_done());
        let r = fe.run(&Session::new(Actor::Processor), Request::Read { key: 3 });
        assert!(
            r.err().is_some_and(EngineError::is_retention_expired),
            "{:?}",
            r.outcome
        );
        // The hidden version is still there for the controller view.
        assert!(fe.forensic().raw_read(3, true).is_some());
    }

    #[test]
    fn meta_scan_returns_rows() {
        let (mut fe, mut bench) = small_db(ProfileKind::PBase);
        load(&mut fe, &mut bench, 200);
        let r = fe.run(
            &Session::new(Actor::Processor),
            Request::ReadByMeta {
                selector: MetaSelector::BySubject(3),
            },
        );
        assert!(r.rows().is_some(), "expected rows, got {:?}", r.outcome);
    }

    #[test]
    fn decision_cache_respects_capacity_and_is_deterministic() {
        let run = |capacity: usize| {
            let mut config = EngineConfig::p_sys().with_decision_cache(capacity);
            config.maintenance_every = 50;
            let mut fe = Frontend::new(config);
            let mut bench = GdprBench::new(21, 50);
            load(&mut fe, &mut bench, 60);
            let ops = bench.ops(300, Mix::wcus());
            fe.submit_ops(&Session::new(Actor::Subject), &ops);
            (fe.db().cached_decisions(), fe.meter().snapshot())
        };
        let (live, work) = run(8);
        assert!(live <= 8, "cache exceeded capacity: {live}");
        // Determinism: the same stream against the same capacity makes
        // identical eviction choices, so the work counters agree exactly.
        let (live2, work2) = run(8);
        assert_eq!(live, live2);
        assert_eq!(work, work2);
        // A larger cache only removes work, never changes outcomes.
        let (_, work_big) = run(4096);
        assert!(work_big.policy_checks <= work.policy_checks);
    }

    #[test]
    fn update_meta_records_policy_change_and_notify() {
        let (mut fe, mut bench) = small_db(ProfileKind::PBase);
        load(&mut fe, &mut bench, 10);
        fe.run(
            &Session::new(Actor::Controller),
            Request::UpdateMeta {
                key: 1,
                field: MetaField::Ttl,
            },
        );
        let unit = fe.unit_of_key(1).unwrap();
        let tuples = fe.history().of_unit(unit);
        assert!(tuples
            .iter()
            .any(|t| t.action.kind() == ActionKind::UpdatePolicy));
        assert!(tuples.iter().any(|t| t.action.kind() == ActionKind::Notify));
    }
}
