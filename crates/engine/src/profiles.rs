//! Engine configuration and the three compliance profiles.
//!
//! A configuration is a point in the `ProfileKind` × [`DeleteStrategy`] ×
//! [`BackendKind`] matrix: which enforcement/logging/crypto stack runs,
//! how workload deletes are grounded, and which storage substrate the
//! compliant engine composes over.

use datacase_crypto::aes::KeySize;
use datacase_crypto::CryptoBackend;
use datacase_sim::fault::FaultInjector;
use datacase_storage::backend::BackendKind;
use datacase_storage::heap::HeapConfig;
use datacase_storage::lsm::LsmConfig;

/// Which compliance profile an engine instance embodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProfileKind {
    /// Stock engine: no policy enforcement, minimal logging, no
    /// encryption. Models vanilla PostgreSQL for Table 1 / Figure 4a.
    Stock,
    /// P_Base (§4.2): RBAC + CSV row logs + AES-256 + DELETE+VACUUM.
    PBase,
    /// P_GBench (§4.2): metadata-table joins + full query logs + LUKS disk
    /// encryption + DELETE only.
    PGBench,
    /// P_SYS (§4.2): Sieve FGAC + encrypted logs + AES-128 + DELETE +
    /// VACUUM FULL + log deletion.
    PSys,
}

impl ProfileKind {
    /// Figure labels.
    pub fn label(self) -> &'static str {
        match self {
            ProfileKind::Stock => "Stock",
            ProfileKind::PBase => "P_Base",
            ProfileKind::PGBench => "P_GBench",
            ProfileKind::PSys => "P_SYS",
        }
    }

    /// All three paper profiles, in the figures' order.
    pub const PAPER: [ProfileKind; 3] =
        [ProfileKind::PBase, ProfileKind::PGBench, ProfileKind::PSys];
}

/// How deletes are grounded during workload execution (Figure 4a's four
/// strategies). Maintenance (vacuum / vacuum-full) runs every
/// [`EngineConfig::maintenance_every`] deletes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeleteStrategy {
    /// Plain `DELETE` — dead tuples accumulate forever.
    DeleteOnly,
    /// `DELETE` + periodic lazy `VACUUM`.
    DeleteVacuum,
    /// `DELETE` + periodic `VACUUM FULL`.
    DeleteVacuumFull,
    /// Hidden-attribute update ("Tombstones (Indexing)") — reversible
    /// inaccessibility; bloats like an UPDATE, filters on every read.
    TombstoneAttribute,
}

impl DeleteStrategy {
    /// Figure 4a's series label.
    pub fn label(self) -> &'static str {
        match self {
            DeleteStrategy::DeleteOnly => "DELETE",
            DeleteStrategy::DeleteVacuum => "DELETE + VACUUM",
            DeleteStrategy::DeleteVacuumFull => "DELETE and VACUUM FULL",
            DeleteStrategy::TombstoneAttribute => "Tombstones (Indexing)",
        }
    }

    /// The four strategies in the figure's legend order.
    pub const ALL: [DeleteStrategy; 4] = [
        DeleteStrategy::DeleteVacuumFull,
        DeleteStrategy::TombstoneAttribute,
        DeleteStrategy::DeleteOnly,
        DeleteStrategy::DeleteVacuum,
    ];
}

/// Full engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The profile (drives enforcement/logging/crypto choices).
    pub profile: ProfileKind,
    /// Which storage substrate backs the engine.
    pub backend: BackendKind,
    /// Heap configuration (used when `backend` is [`BackendKind::Heap`]).
    pub heap: HeapConfig,
    /// LSM configuration (used when `backend` is [`BackendKind::Lsm`]).
    pub lsm: LsmConfig,
    /// Per-tuple payload encryption (None = plaintext payloads).
    pub tuple_encryption: Option<KeySize>,
    /// Delete grounding used by workload deletes.
    pub delete_strategy: DeleteStrategy,
    /// Run the strategy's maintenance after this many deletes.
    pub maintenance_every: u64,
    /// Redact the unit's logs on every delete (P_SYS behaviour).
    pub delete_logs_on_erase: bool,
    /// Fine-grained policies per unit registered at collection (drives
    /// P_SYS's metadata footprint).
    pub policies_per_unit: usize,
    /// Checkpoint (flush + WAL recycle) after this many operations.
    pub checkpoint_every: u64,
    /// People (data subjects) known to the engine.
    pub people: u32,
    /// Use the FGAC policy index (ablation switch; P_SYS only).
    pub fgac_index: bool,
    /// Capacity (entries) of the epoch-versioned policy-decision cache;
    /// `0` disables it. Off by default on every paper profile so measured
    /// enforcement costs stay paper-faithful; production-style runs and
    /// the pipeline benches turn it on with
    /// [`EngineConfig::with_decision_cache`]. Decisions (allows **and**
    /// denials) are stamped with the [`PolicyEpoch`] they were computed
    /// at and revalidated by epoch comparison — stale entries are
    /// structurally unreachable, no TTL involved.
    ///
    /// [`PolicyEpoch`]: datacase_policy::enforcer::PolicyEpoch
    pub decision_cache: usize,
    /// Execute batches through the staged pipeline (plan → decide →
    /// apply → account) in [`Frontend::submit`]: read-only runs fan
    /// payload work out across scoped worker threads while the simulated
    /// cost stream — and therefore replies, meter, and the audit chain —
    /// stays byte-identical to serial execution (the `prop_frontend`
    /// parity suite enforces this). On by default.
    ///
    /// [`Frontend::submit`]: crate::frontend::Frontend::submit
    pub pipeline: bool,
    /// Worker threads for the pipeline's apply stage; `0` picks the host
    /// parallelism (capped at 8). Sharding of work across workers is by
    /// unit id, so per-unit ordering is stable.
    pub pipeline_workers: usize,
    /// Minimum distinct payload bytes in a span before its AES work fans
    /// out across worker threads; smaller spans run inline, where the
    /// T-table path finishes faster than the workers could be spawned.
    /// Lower it (tests use `0`) to force the threaded path.
    pub pipeline_fanout_bytes: usize,
    /// Which AES implementation every crypto path this engine constructs
    /// (tuple vault, sector cipher, encrypted audit log) runs on:
    /// [`CryptoBackend::Auto`] (the default) detects hardware AES-NI and
    /// falls back to the software T-table path; `Software`/`Hardware`/
    /// `Reference` force a series for the crypto A/B. Scoped to this
    /// engine instance: selecting a backend for one bench engine cannot
    /// reroute concurrent engines (or shards) in the same process.
    /// Ciphertext is byte-identical across backends; only wall-clock
    /// changes.
    pub crypto_backend: CryptoBackend,
    /// Capacity (entries) of the [`KeyVault`] keystream cache; `0`
    /// disables it. A hit serves a hot tuple's CTR keystream from memory
    /// and collapses the host-side decrypt to a XOR — simulated AES cost
    /// and meter bytes are charged identically either way, so every
    /// reported figure is bit-identical with the cache on or off. The
    /// cache holds keystream, never plaintext, and entries are stamped
    /// with the key generation: [`KeyVault::destroy_key`] (crypto-erasure)
    /// drops them with the key. Off by default on every paper profile;
    /// opt in with [`EngineConfig::with_keystream_cache`].
    ///
    /// [`KeyVault`]: datacase_crypto::vault::KeyVault
    /// [`KeyVault::destroy_key`]: datacase_crypto::vault::KeyVault::destroy_key
    pub keystream_cache: usize,
    /// Deterministic crash-injection plane (chaos harness). Disabled by
    /// default — every tap is a no-op branch on a `None`. When armed via
    /// [`EngineConfig::with_fault`], the engine panics with a
    /// [`datacase_sim::fault::CrashSignal`] at the chosen
    /// [`datacase_sim::fault::CrashPoint`]; the chaos runner catches it,
    /// salvages the durable storage snapshot, and rebuilds.
    pub fault: FaultInjector,
}

/// Default [`EngineConfig::pipeline_fanout_bytes`]: ~200 µs of AES at
/// T-table throughput, about where fan-out starts beating worker spawn
/// cost.
pub const DEFAULT_FANOUT_BYTES: usize = 64 * 1024;

impl EngineConfig {
    /// Stock engine (vanilla PSQL stand-in) with a delete strategy —
    /// the Figure 4a/Table 1 configuration.
    pub fn stock(strategy: DeleteStrategy) -> EngineConfig {
        EngineConfig {
            profile: ProfileKind::Stock,
            backend: BackendKind::Heap,
            heap: HeapConfig::default(),
            lsm: LsmConfig::default(),
            tuple_encryption: None,
            delete_strategy: strategy,
            maintenance_every: 1000,
            delete_logs_on_erase: false,
            policies_per_unit: 0,
            checkpoint_every: 20_000,
            people: 1000,
            fgac_index: true,
            decision_cache: 0,
            pipeline: true,
            pipeline_workers: 0,
            pipeline_fanout_bytes: DEFAULT_FANOUT_BYTES,
            crypto_backend: CryptoBackend::Auto,
            keystream_cache: 0,
            fault: FaultInjector::disabled(),
        }
    }

    /// The P_Base profile.
    pub fn p_base() -> EngineConfig {
        EngineConfig {
            profile: ProfileKind::PBase,
            backend: BackendKind::Heap,
            heap: HeapConfig::default(),
            lsm: LsmConfig::default(),
            tuple_encryption: Some(KeySize::Aes256),
            delete_strategy: DeleteStrategy::DeleteVacuum,
            maintenance_every: 1000,
            delete_logs_on_erase: false,
            policies_per_unit: 0,
            checkpoint_every: 20_000,
            people: 1000,
            fgac_index: true,
            decision_cache: 0,
            pipeline: true,
            pipeline_workers: 0,
            pipeline_fanout_bytes: DEFAULT_FANOUT_BYTES,
            crypto_backend: CryptoBackend::Auto,
            keystream_cache: 0,
            fault: FaultInjector::disabled(),
        }
    }

    /// The P_GBench profile.
    pub fn p_gbench() -> EngineConfig {
        EngineConfig {
            profile: ProfileKind::PGBench,
            backend: BackendKind::Heap,
            heap: HeapConfig {
                disk_passphrase: Some(b"luks-gbench-passphrase".to_vec()),
                ..HeapConfig::default()
            },
            lsm: LsmConfig::default(),
            tuple_encryption: None,
            delete_strategy: DeleteStrategy::DeleteOnly,
            maintenance_every: u64::MAX,
            delete_logs_on_erase: false,
            policies_per_unit: 5,
            checkpoint_every: 20_000,
            people: 1000,
            fgac_index: true,
            decision_cache: 0,
            pipeline: true,
            pipeline_workers: 0,
            pipeline_fanout_bytes: DEFAULT_FANOUT_BYTES,
            crypto_backend: CryptoBackend::Auto,
            keystream_cache: 0,
            fault: FaultInjector::disabled(),
        }
    }

    /// The P_SYS profile.
    pub fn p_sys() -> EngineConfig {
        EngineConfig {
            profile: ProfileKind::PSys,
            backend: BackendKind::Heap,
            heap: HeapConfig::default(),
            lsm: LsmConfig::default(),
            tuple_encryption: Some(KeySize::Aes128),
            delete_strategy: DeleteStrategy::DeleteVacuumFull,
            maintenance_every: 2000,
            delete_logs_on_erase: true,
            policies_per_unit: 10,
            checkpoint_every: 20_000,
            people: 1000,
            fgac_index: true,
            decision_cache: 0,
            pipeline: true,
            pipeline_workers: 0,
            pipeline_fanout_bytes: DEFAULT_FANOUT_BYTES,
            crypto_backend: CryptoBackend::Auto,
            keystream_cache: 0,
            fault: FaultInjector::disabled(),
        }
    }

    /// Config for a profile kind.
    pub fn for_profile(kind: ProfileKind) -> EngineConfig {
        match kind {
            ProfileKind::Stock => EngineConfig::stock(DeleteStrategy::DeleteOnly),
            ProfileKind::PBase => EngineConfig::p_base(),
            ProfileKind::PGBench => EngineConfig::p_gbench(),
            ProfileKind::PSys => EngineConfig::p_sys(),
        }
    }

    /// The same configuration over a different storage substrate.
    pub fn with_backend(mut self, backend: BackendKind) -> EngineConfig {
        self.backend = backend;
        self
    }

    /// The same configuration with an epoch-versioned decision cache of
    /// `capacity` entries (`0` disables caching).
    pub fn with_decision_cache(mut self, capacity: usize) -> EngineConfig {
        self.decision_cache = capacity;
        self
    }

    /// The same configuration with a generation-stamped keystream cache
    /// of `capacity` entries (`0` disables caching). See
    /// [`EngineConfig::keystream_cache`] for the invariants.
    pub fn with_keystream_cache(mut self, capacity: usize) -> EngineConfig {
        self.keystream_cache = capacity;
        self
    }

    /// The same configuration with the batch pipeline forced on or off
    /// (parity harnesses compare both modes; results are identical by
    /// contract, only wall-clock time differs).
    pub fn with_pipeline(mut self, pipeline: bool) -> EngineConfig {
        self.pipeline = pipeline;
        self
    }

    /// The same configuration with the crash-injection plane set. The
    /// chaos harness arms one [`CrashPoint`](datacase_sim::fault::CrashPoint)
    /// per run; the injector is shared (Arc) with the storage configs at
    /// engine construction so storage-level taps (`wal-append`,
    /// `compaction`, …) fire from the same plane as engine-level taps.
    pub fn with_fault(mut self, fault: FaultInjector) -> EngineConfig {
        self.fault = fault;
        self
    }

    /// The same configuration with every AES path this engine constructs
    /// routed through `backend` — the per-engine selector the crypto A/B
    /// harness sets. See [`EngineConfig::crypto_backend`].
    pub fn with_crypto_backend(mut self, backend: CryptoBackend) -> EngineConfig {
        self.crypto_backend = backend;
        self
    }

    /// Back-compat shim: `true` is [`CryptoBackend::Reference`], `false`
    /// the default [`CryptoBackend::Auto`]. Prefer
    /// [`with_crypto_backend`](EngineConfig::with_crypto_backend).
    pub fn with_reference_crypto(self, on: bool) -> EngineConfig {
        self.with_crypto_backend(if on {
            CryptoBackend::Reference
        } else {
            CryptoBackend::Auto
        })
    }

    /// Is data encrypted at rest under this configuration? Per-tuple
    /// encryption counts on any backend; LUKS-style disk encryption is a
    /// heap-substrate feature.
    pub fn encryption_at_rest(&self) -> bool {
        self.tuple_encryption.is_some()
            || (self.backend == BackendKind::Heap && self.heap.disk_passphrase.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_spec() {
        let base = EngineConfig::p_base();
        assert_eq!(base.tuple_encryption, Some(KeySize::Aes256));
        assert_eq!(base.delete_strategy, DeleteStrategy::DeleteVacuum);
        assert!(!base.delete_logs_on_erase);

        let gbench = EngineConfig::p_gbench();
        assert!(gbench.heap.disk_passphrase.is_some(), "LUKS disk");
        assert_eq!(gbench.delete_strategy, DeleteStrategy::DeleteOnly);

        let sys = EngineConfig::p_sys();
        assert_eq!(sys.tuple_encryption, Some(KeySize::Aes128));
        assert_eq!(sys.delete_strategy, DeleteStrategy::DeleteVacuumFull);
        assert!(sys.delete_logs_on_erase);
        assert!(sys.policies_per_unit > gbench.policies_per_unit);
    }

    #[test]
    fn strategy_labels_match_figure_4a() {
        assert_eq!(DeleteStrategy::DeleteVacuum.label(), "DELETE + VACUUM");
        assert_eq!(
            DeleteStrategy::TombstoneAttribute.label(),
            "Tombstones (Indexing)"
        );
        assert_eq!(DeleteStrategy::ALL.len(), 4);
    }

    #[test]
    fn profile_labels() {
        assert_eq!(ProfileKind::PBase.label(), "P_Base");
        assert_eq!(ProfileKind::PAPER.len(), 3);
    }

    #[test]
    fn profiles_default_to_heap_and_rebind_to_lsm() {
        for kind in [
            ProfileKind::Stock,
            ProfileKind::PBase,
            ProfileKind::PGBench,
            ProfileKind::PSys,
        ] {
            let config = EngineConfig::for_profile(kind);
            assert_eq!(config.backend, BackendKind::Heap);
            let lsm = config.with_backend(BackendKind::Lsm);
            assert_eq!(lsm.backend, BackendKind::Lsm);
            assert_eq!(lsm.profile, kind, "profile survives the rebind");
        }
    }

    #[test]
    fn encryption_at_rest_accounts_for_backend() {
        // P_GBench's at-rest evidence is LUKS disk encryption — a heap
        // feature that does not carry to the LSM substrate.
        let gbench = EngineConfig::p_gbench();
        assert!(gbench.encryption_at_rest());
        assert!(!gbench.with_backend(BackendKind::Lsm).encryption_at_rest());
        // P_Base encrypts per tuple, which holds on any backend.
        let base = EngineConfig::p_base();
        assert!(base.with_backend(BackendKind::Lsm).encryption_at_rest());
    }
}
