//! Privacy Impact Assessment and certification support (paper §4.4).
//!
//! * **PIA** — "GDPR (G35) imposes the burden of a PIA on controllers
//!   prior to starting data processing. […] Data-CASE supports impact
//!   assessments by providing system designers with system-actions
//!   corresponding to each step in the data processing pipeline and their
//!   properties." [`assess`] inspects an engine *configuration* (before
//!   deployment) and reports the groundings it supports, their property
//!   matrix, and the residual risks.
//! * **Certification** — "regulatory agencies […] certify that a data
//!   processing system is, indeed, compliant". [`certify`] runs the live
//!   checker plus the empirical erasure probes and issues a certificate
//!   only if both pass.

use datacase_core::grounding::erasure::ErasureInterpretation;
use datacase_core::grounding::properties::ErasureProperties;
use datacase_core::grounding::table::{Backend, GroundingTable};
use datacase_core::regulation::Regulation;
use datacase_sim::report::Table;

use crate::frontend::Frontend;
use crate::profiles::{DeleteStrategy, EngineConfig, ProfileKind};

/// One identified risk with its severity and mitigation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Risk {
    /// Short risk title.
    pub title: String,
    /// Why it matters.
    pub detail: String,
    /// The system-action-level mitigation Data-CASE suggests.
    pub mitigation: String,
}

/// A pre-deployment privacy impact assessment.
#[derive(Clone, Debug)]
pub struct PiaReport {
    /// The profile assessed.
    pub profile: ProfileKind,
    /// The strongest erasure interpretation the workload path achieves.
    pub workload_erasure: ErasureInterpretation,
    /// Whether data is encrypted at rest by default.
    pub encrypted_at_rest: bool,
    /// Whether logs are redacted on erasure.
    pub logs_redacted_on_erase: bool,
    /// Identified risks.
    pub risks: Vec<Risk>,
}

impl PiaReport {
    /// Render as a report table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!("PIA — {} profile", self.profile.label()),
            &["risk", "detail", "mitigation"],
        );
        for r in &self.risks {
            t.row(vec![
                r.title.clone(),
                r.detail.clone(),
                r.mitigation.clone(),
            ]);
        }
        format!(
            "workload erasure grounding: {}\nencrypted at rest: {}\nlogs redacted on erase: {}\n{}",
            self.workload_erasure.label(),
            self.encrypted_at_rest,
            self.logs_redacted_on_erase,
            t.render_text()
        )
    }

    /// Is the configuration acceptable for `regulation` without retrofit?
    pub fn acceptable_for(&self, regulation: &Regulation) -> bool {
        self.workload_erasure.implies(regulation.min_erasure)
            && (!regulation.require_encryption_at_rest || self.encrypted_at_rest)
    }
}

/// Assess an engine configuration before deployment.
pub fn assess(config: &EngineConfig) -> PiaReport {
    let workload_erasure = match config.delete_strategy {
        DeleteStrategy::TombstoneAttribute => ErasureInterpretation::ReversiblyInaccessible,
        DeleteStrategy::DeleteOnly
        | DeleteStrategy::DeleteVacuum
        | DeleteStrategy::DeleteVacuumFull => ErasureInterpretation::Deleted,
    };
    let encrypted = config.tuple_encryption.is_some() || config.heap.disk_passphrase.is_some();
    let mut risks = Vec::new();
    if config.delete_strategy == DeleteStrategy::DeleteOnly {
        risks.push(Risk {
            title: "unbounded physical retention".into(),
            detail: "DELETE without VACUUM leaves dead tuples on pages indefinitely".into(),
            mitigation: "enable periodic VACUUM (maintenance_every) or VACUUM FULL".into(),
        });
    }
    if config.delete_strategy == DeleteStrategy::TombstoneAttribute {
        risks.push(Risk {
            title: "erasure is reversible".into(),
            detail: "the hidden attribute keeps data readable by the controller".into(),
            mitigation: "schedule physical deletion after the inaccessibility window".into(),
        });
    }
    if !encrypted {
        risks.push(Risk {
            title: "plaintext at rest".into(),
            detail: "disk residuals (dead tuples, WAL, remanence) expose personal data".into(),
            mitigation: "enable tuple encryption or LUKS-style disk encryption".into(),
        });
    }
    if !config.delete_logs_on_erase {
        risks.push(Risk {
            title: "log retention after erasure".into(),
            detail: "audit/WAL records keep erased units' payloads".into(),
            mitigation: "enable delete_logs_on_erase (P_SYS behaviour) or log encryption".into(),
        });
    }
    if config.maintenance_every == u64::MAX
        && config.delete_strategy != DeleteStrategy::TombstoneAttribute
    {
        risks.push(Risk {
            title: "no maintenance cadence".into(),
            detail: "vacuum never runs; physical deletion is never completed".into(),
            mitigation: "set maintenance_every to bound time-to-physical-erasure".into(),
        });
    }
    PiaReport {
        profile: config.profile,
        workload_erasure,
        encrypted_at_rest: encrypted,
        logs_redacted_on_erase: config.delete_logs_on_erase,
        risks,
    }
}

/// A certificate issued by a regulatory agency's process (§4.4).
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Regulation certified against.
    pub regulation: String,
    /// The checker's verdict.
    pub checker_compliant: bool,
    /// Erasure probes that matched Table 1's expected matrix.
    pub probes_passed: usize,
    /// Probes run.
    pub probes_total: usize,
    /// Grounding descriptions the system declared (Figure 2's mapping).
    pub declared_groundings: Vec<String>,
}

impl Certificate {
    /// Is the certificate granted?
    pub fn granted(&self) -> bool {
        self.checker_compliant && self.probes_passed == self.probes_total
    }
}

/// Certify a live engine: invariant check + empirical erasure probes +
/// declared groundings.
pub fn certify(frontend: &mut Frontend, regulation: &Regulation) -> Certificate {
    let report = frontend.compliance_report(regulation);
    let mut probes_passed = 0;
    let probes_total = ErasureInterpretation::ALL.len();
    for interp in ErasureInterpretation::ALL {
        let p = crate::erasure::probe(interp);
        if p.measured == ErasureProperties::expected(interp) {
            probes_passed += 1;
        }
    }
    let table = GroundingTable::standard();
    let declared = ErasureInterpretation::ALL
        .into_iter()
        .filter_map(|i| {
            table
                .plan(Backend::Heap, i)
                .map(|p| format!("{} -> {}", i.label(), p.describe()))
        })
        .collect();
    Certificate {
        regulation: regulation.name.clone(),
        checker_compliant: report.is_compliant(),
        probes_passed,
        probes_total,
        declared_groundings: declared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Actor;
    use crate::frontend::Session;
    use datacase_workloads::gdprbench::GdprBench;

    #[test]
    fn stock_config_is_risky() {
        let pia = assess(&EngineConfig::stock(DeleteStrategy::DeleteOnly));
        assert!(pia.risks.len() >= 3, "{:#?}", pia.risks);
        assert!(!pia.acceptable_for(&Regulation::gdpr()), "no encryption");
        assert!(pia.render().contains("unbounded physical retention"));
    }

    #[test]
    fn p_sys_config_has_fewest_risks() {
        let base = assess(&EngineConfig::p_base());
        let sys = assess(&EngineConfig::p_sys());
        assert!(sys.risks.len() < base.risks.len());
        assert!(sys.acceptable_for(&Regulation::gdpr()));
        assert!(sys.logs_redacted_on_erase);
    }

    #[test]
    fn tombstone_config_fails_gdpr_minimum() {
        let mut cfg = EngineConfig::p_base();
        cfg.delete_strategy = DeleteStrategy::TombstoneAttribute;
        let pia = assess(&cfg);
        assert_eq!(
            pia.workload_erasure,
            ErasureInterpretation::ReversiblyInaccessible
        );
        assert!(!pia.acceptable_for(&Regulation::gdpr()));
        // …but acceptable where reversible inaccessibility suffices.
        let mut lax = Regulation::ccpa();
        lax.min_erasure = ErasureInterpretation::ReversiblyInaccessible;
        lax.require_encryption_at_rest = false;
        assert!(pia.acceptable_for(&lax));
    }

    #[test]
    fn certification_passes_for_compliant_engine() {
        let mut fe = Frontend::new(EngineConfig::p_sys());
        let mut bench = GdprBench::new(5, 50);
        fe.submit_ops(&Session::new(Actor::Controller), &bench.load_phase(50));
        let cert = certify(&mut fe, &Regulation::gdpr());
        assert!(cert.granted(), "{cert:?}");
        assert_eq!(cert.probes_passed, cert.probes_total);
        assert_eq!(cert.declared_groundings.len(), 4);
    }

    #[test]
    fn certification_denied_after_violation() {
        let mut fe = Frontend::new(EngineConfig::p_base());
        let mut bench = GdprBench::new(6, 50);
        fe.submit_ops(&Session::new(Actor::Controller), &bench.load_phase(20));
        let unit = fe.unit_of_key(1).unwrap();
        let rogue = fe.entities().by_name("AdPartner").unwrap().id;
        let at = fe.clock().now();
        fe.forensic()
            .inject_history(datacase_core::history::HistoryTuple {
                unit,
                purpose: datacase_core::purpose::well_known::advertising(),
                entity: rogue,
                action: datacase_core::action::Action::Read,
                at,
            });
        let cert = certify(&mut fe, &Regulation::gdpr());
        assert!(!cert.granted());
        assert!(!cert.checker_compliant);
    }
}
