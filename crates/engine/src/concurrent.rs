//! Concurrent multi-session engine: a sharded frontend behind MPSC
//! submission queues.
//!
//! [`ConcurrentEngine`] turns the single-owner [`Frontend`] into a shared
//! service without putting a lock around the engine. State is sharded by
//! unit class — request key modulo the shard count, the same partitioning
//! [`sharded_run_plan`](crate::driver::sharded_run_plan) uses — and each
//! shard is owned exclusively by one worker thread holding its own
//! [`Frontend`]. Clients hold a cloneable [`EngineHandle`] and submit
//! batches from any thread; the handle splits a batch along shard lines,
//! enqueues one submission per touched shard, and returns a
//! [`Ticket`] that reassembles the per-shard replies back into the
//! caller's request order.
//!
//! ## Ordering and soundness
//!
//! * **Per-shard total order.** A shard worker drains its queue in FIFO
//!   order and executes each burst through
//!   [`exec::execute_many`](crate::exec) — so every shard's audit chain
//!   is byte-identical to replaying that shard's arrival sequence
//!   serially. [`merged_chain_head`] folds the per-shard heads (in shard
//!   order) into one engine-wide digest.
//! * **Cross-batch pipelining.** When submissions queue up, the worker
//!   drains up to [`MAX_BURST`] of them and runs the burst through *one*
//!   staged pipeline: read waves straddle submission boundaries while the
//!   account pass stays serial, so replies, residuals, and chain bytes
//!   match one-at-a-time execution exactly.
//! * **Revocation safety.** All shards share one
//!   [`datacase_policy::enforcer::EpochBus`]: a global-scope
//!   revoke observed by any shard publishes a generation bump, and every
//!   other shard strands its stale cached allows at the next submission
//!   boundary — before any decide that could have reused them.
//! * **Keyless requests.** [`Request::ReadByMeta`] names no shard; the
//!   handle broadcasts it to every shard and the ticket merges the
//!   per-shard row counts ([`Reply::Rows`] sums; the first error in shard
//!   order wins, as does the lowest shard's [`AuditRef`](crate::frontend::AuditRef)).
//!
//! [`shutdown`](ConcurrentEngine::shutdown) drops the queues, joins the
//! workers, and hands back the per-shard [`Frontend`]s so callers can run
//! forensics, compliance checks, or the multi-session parity gate against
//! the final states.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use datacase_crypto::sha256::Sha256;
use datacase_policy::enforcer::EpochBus;
use datacase_sim::{Meter, SimClock};

use crate::driver::ShardPlan;
use crate::exec;
use crate::frontend::{Frontend, Reply, Request, Response, Session};
use crate::profiles::EngineConfig;

/// Upper bound on how many queued submissions a shard worker fuses into
/// one staged pipeline pass. Bounds reply latency under sustained load
/// without giving up cross-batch span coalescing.
pub const MAX_BURST: usize = 32;

/// Which shard owns a request: its key modulo the shard count, or `None`
/// for keyless metadata scans (which broadcast to every shard).
///
/// This is the same unit-class partitioning the sharded offline driver
/// uses, so a dataset loaded through either path lands identically.
pub fn shard_of(request: &Request, shards: usize) -> Option<usize> {
    request.key().map(|k| (k % shards as u64) as usize)
}

/// One client batch routed to one shard: the sub-batch of requests that
/// shard owns, plus the channel its reply travels back on.
struct Submission {
    session: Session,
    requests: Vec<Request>,
    reply: Sender<ShardReply>,
}

/// What travels down a shard's queue: work, or the shutdown marker.
/// FIFO delivery means every submission enqueued before the drain marker
/// is executed and answered before the worker exits.
enum ShardMsg {
    Batch(Submission),
    Drain,
}

/// A shard worker's answer to one [`Submission`].
struct ShardReply {
    shard: usize,
    seq: u64,
    responses: Vec<Response>,
}

/// Where a sub-batch landed in a shard's serial order: the `seq`-th
/// submission executed by shard `shard`. A set of stamps is a complete
/// recipe for replaying a concurrent run serially — the multi-session
/// parity gate replays stamps in `(shard, seq)` order and demands
/// byte-identical audit chains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SubmitStamp {
    /// The shard that executed the sub-batch.
    pub shard: usize,
    /// 1-based position within that shard's execution order.
    pub seq: u64,
}

/// An in-flight batch: created by [`EngineHandle::submit`], redeemed by
/// [`Ticket::wait`].
pub struct Ticket {
    rx: Receiver<ShardReply>,
    /// Shards still owing a reply.
    pending: usize,
    /// Per shard: local sub-batch index → caller's request index.
    maps: Vec<Vec<usize>>,
    /// Per caller index: how many shard replies feed it (1, or the shard
    /// count for broadcast scans).
    fanin: Vec<usize>,
    total: usize,
}

impl Ticket {
    /// Block until every touched shard has replied, then reassemble the
    /// responses into the caller's request order.
    ///
    /// Returns the responses plus one [`SubmitStamp`] per touched shard
    /// (in shard order), pinpointing where each sub-batch landed in its
    /// shard's serial history.
    pub fn wait(self) -> (Vec<Response>, Vec<SubmitStamp>) {
        let mut stamps = Vec::with_capacity(self.pending);
        let mut slots: Vec<Option<Response>> = (0..self.total).map(|_| None).collect();
        // Broadcast requests collect one response per shard; merged only
        // once every reply is in, sorted by shard for determinism.
        let mut partial: Vec<(usize, usize, Response)> = Vec::new();
        for _ in 0..self.pending {
            let reply = self.rx.recv().expect("shard worker hung up mid-batch");
            stamps.push(SubmitStamp {
                shard: reply.shard,
                seq: reply.seq,
            });
            for response in reply.responses {
                let global = self.maps[reply.shard][response.index];
                if self.fanin[global] <= 1 {
                    slots[global] = Some(Response {
                        index: global,
                        ..response
                    });
                } else {
                    partial.push((global, reply.shard, response));
                }
            }
        }
        stamps.sort_unstable();
        partial.sort_by_key(|(global, shard, _)| (*global, *shard));
        let mut run: Vec<(usize, Response)> = Vec::new();
        let flush = |slots: &mut Vec<Option<Response>>, run: &mut Vec<(usize, Response)>| {
            if let Some((global, _)) = run.first() {
                let global = *global;
                slots[global] = Some(merge_scan(global, std::mem::take(run)));
            }
        };
        for (global, shard, response) in partial {
            if run.first().is_some_and(|(g, _)| *g != global) {
                flush(&mut slots, &mut run);
            }
            run.push((global, response));
            let _ = shard;
        }
        flush(&mut slots, &mut run);
        let responses = slots
            .into_iter()
            .map(|slot| slot.expect("every request index answered"))
            .collect();
        (responses, stamps)
    }
}

/// Fold a broadcast scan's per-shard responses (pre-sorted by shard)
/// into one: row counts sum; the first error in shard order wins; the
/// audit reference is the lowest shard's (each shard logged its own scan
/// record — the merged ref is a representative, not a global cursor).
fn merge_scan(global: usize, parts: Vec<(usize, Response)>) -> Response {
    let audit = parts
        .first()
        .map(|(_, r)| r.audit)
        .expect("merge of at least one shard response");
    let mut rows = 0usize;
    for (_, response) in parts {
        match response.outcome {
            Err(e) => {
                return Response {
                    index: global,
                    outcome: Err(e),
                    audit,
                }
            }
            Ok(Reply::Rows(n)) => rows += n,
            Ok(other) => {
                return Response {
                    index: global,
                    outcome: Ok(other),
                    audit,
                }
            }
        }
    }
    Response {
        index: global,
        outcome: Ok(Reply::Rows(rows)),
        audit,
    }
}

/// A cloneable, thread-safe submission port into a [`ConcurrentEngine`].
///
/// Handles may outlive the engine only nominally: submitting after
/// [`ConcurrentEngine::shutdown`] panics (the queues are gone).
#[derive(Clone)]
pub struct EngineHandle {
    txs: Vec<Sender<ShardMsg>>,
}

impl EngineHandle {
    /// Number of shards behind this handle.
    pub fn shards(&self) -> usize {
        self.txs.len()
    }

    /// Split a batch along shard lines, enqueue the sub-batches, and
    /// return a [`Ticket`] for the replies. Does not block on execution.
    pub fn submit(&self, session: &Session, requests: &[Request]) -> Ticket {
        let shards = self.txs.len();
        let mut parts: Vec<Vec<Request>> = vec![Vec::new(); shards];
        let mut maps: Vec<Vec<usize>> = vec![Vec::new(); shards];
        let mut fanin = vec![0usize; requests.len()];
        for (global, request) in requests.iter().enumerate() {
            match shard_of(request, shards) {
                Some(shard) => {
                    parts[shard].push(request.clone());
                    maps[shard].push(global);
                    fanin[global] = 1;
                }
                None => {
                    // Keyless metadata scan: every shard answers for its
                    // own slice of the unit space.
                    for (shard, part) in parts.iter_mut().enumerate() {
                        part.push(request.clone());
                        maps[shard].push(global);
                    }
                    fanin[global] = shards;
                }
            }
        }
        let (reply_tx, reply_rx) = channel();
        let mut pending = 0;
        for (shard, requests) in parts.into_iter().enumerate() {
            if requests.is_empty() {
                continue;
            }
            pending += 1;
            self.txs[shard]
                .send(ShardMsg::Batch(Submission {
                    session: session.clone(),
                    requests,
                    reply: reply_tx.clone(),
                }))
                .expect("submitted to a shut-down engine");
        }
        Ticket {
            rx: reply_rx,
            pending,
            maps,
            fanin,
            total: requests.len(),
        }
    }

    /// Submit and block for the replies — `submit().wait()` minus the
    /// stamps, for callers that don't replay.
    pub fn call(&self, session: &Session, requests: &[Request]) -> Vec<Response> {
        self.submit(session, requests).wait().0
    }
}

/// The shared concurrent engine: one worker thread and one MPSC queue
/// per shard, each worker owning a [`Frontend`] over that shard's slice
/// of the unit space. See the [module docs](self) for the ordering
/// contract.
pub struct ConcurrentEngine {
    handle: EngineHandle,
    workers: Vec<JoinHandle<Frontend>>,
}

impl ConcurrentEngine {
    /// Spin up `shards` identical shards of `config` (same backend
    /// everywhere). The config's own `backend` field seeds every shard.
    pub fn new(config: EngineConfig, shards: usize) -> ConcurrentEngine {
        let plan = ShardPlan::uniform(config.backend, shards);
        ConcurrentEngine::with_plan(config, &plan)
    }

    /// Spin up one shard per entry of `plan`, allowing mixed substrates
    /// (heap shards next to LSM shards), all wired to one shared
    /// [`EpochBus`].
    pub fn with_plan(config: EngineConfig, plan: &ShardPlan) -> ConcurrentEngine {
        assert!(plan.shards() > 0, "engine needs at least one shard");
        let bus = EpochBus::new();
        let mut txs = Vec::with_capacity(plan.shards());
        let mut workers = Vec::with_capacity(plan.shards());
        for (shard, &backend) in plan.backends.iter().enumerate() {
            let (tx, rx) = channel::<ShardMsg>();
            let cfg = config.clone().with_backend(backend);
            let bus = bus.clone();
            let worker = std::thread::Builder::new()
                .name(format!("datacase-shard-{shard}"))
                .spawn(move || {
                    let mut fe =
                        Frontend::with_clock(cfg, SimClock::commodity(), Arc::new(Meter::new()));
                    fe.db_mut().attach_epoch_bus(bus);
                    shard_loop(shard, rx, fe)
                })
                .expect("spawn shard worker");
            txs.push(tx);
            workers.push(worker);
        }
        ConcurrentEngine {
            handle: EngineHandle { txs },
            workers,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.handle.shards()
    }

    /// A cloneable submission port; hand one to each client thread.
    pub fn handle(&self) -> EngineHandle {
        self.handle.clone()
    }

    /// Convenience: submit from the owning thread.
    pub fn submit(&self, session: &Session, requests: &[Request]) -> Ticket {
        self.handle.submit(session, requests)
    }

    /// Drain the queues, join every worker, and return the per-shard
    /// [`Frontend`]s in shard order for forensics and verification.
    ///
    /// Every submission enqueued before this call executes and is
    /// answered first (the drain marker trails them in FIFO order), so no
    /// redeemed ticket is left hanging. Outstanding [`EngineHandle`]
    /// clones do not block the shutdown; a submit through one afterwards
    /// panics, and a submit racing the drain marker may panic on a
    /// dropped reply instead — quiesce clients first if that matters.
    pub fn shutdown(self) -> Vec<Frontend> {
        for tx in &self.handle.txs {
            // A worker that already exited (panicked) has dropped its
            // receiver; join below will surface that.
            let _ = tx.send(ShardMsg::Drain);
        }
        drop(self.handle);
        self.workers
            .into_iter()
            .map(|worker| worker.join().expect("shard worker panicked"))
            .collect()
    }
}

/// A shard worker's life: block for one submission, opportunistically
/// drain up to [`MAX_BURST`] more, execute the burst through one staged
/// pipeline, reply per submission in arrival order. Exits (returning its
/// [`Frontend`]) at the drain marker or when the queue closes.
fn shard_loop(shard: usize, rx: Receiver<ShardMsg>, mut fe: Frontend) -> Frontend {
    let mut seq: u64 = 0;
    let mut draining = false;
    while !draining {
        let Ok(ShardMsg::Batch(first)) = rx.recv() else {
            break;
        };
        let mut burst = vec![first];
        while burst.len() < MAX_BURST {
            match rx.try_recv() {
                Ok(ShardMsg::Batch(submission)) => burst.push(submission),
                Ok(ShardMsg::Drain) => {
                    draining = true;
                    break;
                }
                Err(_) => break,
            }
        }
        let mut replies = Vec::with_capacity(burst.len());
        let mut batches = Vec::with_capacity(burst.len());
        for submission in burst {
            replies.push(submission.reply);
            batches.push((submission.session, submission.requests));
        }
        let grouped = exec::execute_many(fe.db_mut(), &batches);
        for (reply, responses) in replies.into_iter().zip(grouped) {
            seq += 1;
            // A client that dropped its ticket no longer cares; the work
            // is already accounted and audited either way.
            let _ = reply.send(ShardReply {
                shard,
                seq,
                responses,
            });
        }
    }
    fe
}

/// Fold per-shard audit chain heads (shard order) into one engine-wide
/// digest. Two runs agree on this iff they agree on every shard's chain
/// bytes — the concurrent run's merged total order.
pub fn merged_chain_head(shards: &mut [Frontend]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"datacase-merged-chain-v1");
    for fe in shards.iter_mut() {
        h.update(&fe.forensic().chain_head());
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Actor;
    use crate::frontend::Batch;
    use crate::profiles::EngineConfig;
    use datacase_core::purpose::well_known as wk;
    use datacase_sim::time::{Dur, Ts};
    use datacase_storage::backend::BackendKind;
    use datacase_workloads::opstream::MetaSelector;
    use datacase_workloads::record::GdprMetadata;

    fn session() -> Session {
        Session::new(Actor::Controller)
    }

    fn create(key: u64) -> Request {
        let subject = (key % 7) as u32;
        let mut payload = format!("person={subject};key={key};").into_bytes();
        payload.resize(64, b'.');
        Request::Create {
            key,
            payload,
            metadata: GdprMetadata {
                subject,
                purpose: wk::analytics(),
                ttl: Ts::ZERO + Dur::from_secs(365 * 24 * 3600),
                origin_device: 1,
                objects_to_sharing: false,
            },
        }
    }

    #[test]
    fn replies_land_in_request_order_across_shards() {
        let engine = ConcurrentEngine::new(EngineConfig::p_base(), 3);
        let handle = engine.handle();
        let s = session();
        let creates: Vec<Request> = (0..30).map(create).collect();
        let (responses, stamps) = handle.submit(&s, &creates).wait();
        assert_eq!(responses.len(), 30);
        assert_eq!(stamps.len(), 3, "all three shards touched");
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.outcome, Ok(Reply::Done), "create {i} failed: {r:?}");
        }
        let reads: Vec<Request> = (0..30).map(|k| Request::Read { key: k }).collect();
        for r in handle.call(&s, &reads) {
            assert_eq!(r.outcome, Ok(Reply::Value(64)));
        }
        let frontends = engine.shutdown();
        assert_eq!(frontends.len(), 3);
    }

    #[test]
    fn broadcast_scan_sums_rows_across_shards() {
        let engine = ConcurrentEngine::new(EngineConfig::p_base(), 4);
        let s = session();
        let creates: Vec<Request> = (0..40).map(create).collect();
        engine.submit(&s, &creates).wait();
        let scan = Request::ReadByMeta {
            selector: MetaSelector::BySubject(3),
        };
        let (responses, stamps) = engine.submit(&s, std::slice::from_ref(&scan)).wait();
        assert_eq!(stamps.len(), 4, "keyless scans broadcast to every shard");
        // Keys 3, 10, 17, 24, 31, 38 carry subject person=3.
        assert_eq!(responses[0].outcome, Ok(Reply::Rows(6)));
        engine.shutdown();
    }

    #[test]
    fn concurrent_run_replays_serially_from_stamps() {
        // Four client threads hammer disjoint key ranges; afterwards the
        // recorded (shard, seq) stamps replay the exact per-shard order
        // on a fresh engine, which must agree byte-for-byte.
        let shards = 2;
        let cfg = EngineConfig::p_base().with_backend(BackendKind::Lsm);
        let engine = ConcurrentEngine::new(cfg.clone(), shards);
        let s = session();
        let mut recorded: Vec<(SubmitStamp, Vec<Request>, Vec<Response>)> = Vec::new();
        std::thread::scope(|scope| {
            let joins: Vec<_> = (0..4u64)
                .map(|client| {
                    let handle = engine.handle();
                    let s = s.clone();
                    scope.spawn(move || {
                        let mut log = Vec::new();
                        for step in 0..5u64 {
                            // One shard per submission so each ticket
                            // yields exactly one stamp.
                            let shard = (client + step) % shards as u64;
                            let base = 1000 * client + 10 * step;
                            let batch: Vec<Request> = (0..4)
                                .map(|i| create(base + i * shards as u64 + shard))
                                .collect();
                            let (responses, stamps) = handle.submit(&s, &batch).wait();
                            assert_eq!(stamps.len(), 1);
                            log.push((stamps[0], batch, responses));
                        }
                        log
                    })
                })
                .collect();
            for join in joins {
                recorded.extend(join.join().unwrap());
            }
        });
        let mut live = engine.shutdown();
        let live_head = merged_chain_head(&mut live);

        // Serial witness: same sub-batches, same per-shard order.
        recorded.sort_by_key(|(stamp, _, _)| *stamp);
        let replay = ConcurrentEngine::new(cfg, shards);
        for (stamp, batch, concurrent_responses) in &recorded {
            let (serial_responses, stamps) = replay.submit(&s, batch).wait();
            assert_eq!(stamps[0].shard, stamp.shard);
            assert_eq!(&serial_responses, concurrent_responses);
        }
        let mut serial = replay.shutdown();
        assert_eq!(merged_chain_head(&mut serial), live_head);
    }

    #[test]
    fn shutdown_returns_frontends_with_audit_state() {
        // Plaintext tuples so the forensic marker scan can see payloads.
        let mut config = EngineConfig::p_sys();
        config.tuple_encryption = None;
        let engine = ConcurrentEngine::new(config, 2);
        let s = session();
        let creates: Vec<Request> = (0..8).map(create).collect();
        engine.submit(&s, &creates).wait();
        let mut frontends = engine.shutdown();
        let head_a = merged_chain_head(&mut frontends);
        let head_b = merged_chain_head(&mut frontends);
        assert_eq!(head_a, head_b, "chain heads are stable once quiesced");
        let total: usize = frontends
            .iter_mut()
            .map(|fe| fe.forensic().scan(b"person=").total())
            .sum();
        assert!(total > 0, "P_SYS residuals visible before erasure");
    }

    #[test]
    fn batch_type_round_trips_through_handle() {
        let engine = ConcurrentEngine::new(EngineConfig::p_gbench(), 2);
        let s = session();
        let batch = Batch::from(vec![create(1), create(2)]);
        let responses = engine.handle().call(&s, batch.requests());
        assert!(responses.iter().all(|r| r.outcome.is_ok()));
        engine.shutdown();
    }
}
