#![warn(missing_docs)]
//! # datacase-engine
//!
//! The compliant engine: the paper's three GDPR-compliance profiles
//! (§4.2) realised over the from-scratch substrates, fronted by a
//! session-scoped, batch-first request API.
//!
//! * **P_Base** — RBAC, CSV row-level response logging, AES-256 per-tuple
//!   encryption, erasure = DELETE + (periodic) VACUUM. Least restrictive,
//!   cheapest.
//! * **P_GBench** — policies in a separate metadata table (join per
//!   operation), full query+response logging, LUKS-style (SHA-256-derived
//!   key) disk encryption, erasure = DELETE only.
//! * **P_SYS** — Sieve-style FGAC middleware (fine per-tuple policy
//!   checks), AES-128 encrypted data and logs, erasure = DELETE +
//!   VACUUM FULL + deletion of the unit's logs. Most restrictive, most
//!   expensive.
//!
//! The **only public write path** is the [`frontend`] module: a
//! [`Frontend`] owns the engine, a [`Session`] carries the authenticated
//! [`Actor`], declared purpose, and deadline, and typed [`Request`]s are
//! submitted as [`Batch`]es — each answered with a [`Response`] whose
//! outcome is `Result<Reply, EngineError>` plus an [`AuditRef`] into the
//! audit log. Batches execute through the staged pipeline in [`exec`]
//! (plan → decide → apply → account): policy checks resolve against an
//! epoch-versioned decision cache, read payload work is coalesced and
//! fanned out across scoped workers, and audit records commit in batch
//! order — observably identical to serial execution down to the audit
//! chain's bytes. The engine simultaneously maintains the Data-CASE
//! *abstract model* (state + action history from `datacase-core`), so the
//! compliance checker can audit any run; the erasure executor that maps
//! grounded interpretations to system-action plans (Table 1) is driven by
//! [`Request::Erase`] / [`Request::Restore`].
//!
//! Every profile composes over a pluggable
//! [`StorageBackend`](datacase_storage::backend::StorageBackend): the
//! PostgreSQL-style heap or the Cassandra-style LSM tree, selected by
//! [`EngineConfig::backend`](profiles::EngineConfig) — the full
//! configuration space is `ProfileKind` × `DeleteStrategy` ×
//! [`BackendKind`], and [`ShardPlan`] lets a sharded run mix substrates
//! per shard.

mod db;

pub mod concurrent;
pub mod driver;
pub mod erasure;
pub mod error;
pub mod exec;
pub mod frontend;
pub mod pia;
pub mod profiles;
pub mod space;
pub mod sweeper;

pub use concurrent::{
    merged_chain_head, shard_of, ConcurrentEngine, EngineHandle, SubmitStamp, Ticket,
};
pub use datacase_storage::backend::{BackendKind, BackendStats};
pub use db::Actor;
pub use driver::{
    run_ops, run_ops_batched, sharded_run, sharded_run_plan, RunStats, ShardPlan, ShardedRun,
};
pub use erasure::{lsm_erase, probe, probe_on, LsmEraseOutcome};
pub use error::EngineError;
pub use exec::RequestClass;
pub use frontend::{AuditRef, Batch, Forensic, Frontend, Reply, Request, Response, Session};
pub use pia::{assess, certify, Certificate, PiaReport};
pub use profiles::{DeleteStrategy, EngineConfig, ProfileKind};
pub use space::SpaceReport;
pub use sweeper::{sweep, SweepReport, SweeperConfig};
