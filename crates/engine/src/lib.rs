#![warn(missing_docs)]
//! # datacase-engine
//!
//! The `CompliantDb` engine: the paper's three GDPR-compliance profiles
//! (§4.2) realised over the from-scratch substrates.
//!
//! * **P_Base** — RBAC, CSV row-level response logging, AES-256 per-tuple
//!   encryption, erasure = DELETE + (periodic) VACUUM. Least restrictive,
//!   cheapest.
//! * **P_GBench** — policies in a separate metadata table (join per
//!   operation), full query+response logging, LUKS-style (SHA-256-derived
//!   key) disk encryption, erasure = DELETE only.
//! * **P_SYS** — Sieve-style FGAC middleware (fine per-tuple policy
//!   checks), AES-128 encrypted data and logs, erasure = DELETE +
//!   VACUUM FULL + deletion of the unit's logs. Most restrictive, most
//!   expensive.
//!
//! The engine simultaneously maintains the Data-CASE *abstract model*
//! (state + action history from `datacase-core`), so the compliance
//! checker can audit any run, and exposes the erasure executor that maps
//! grounded interpretations to system-action plans (Table 1).
//!
//! Every profile composes over a pluggable
//! [`StorageBackend`](datacase_storage::backend::StorageBackend): the
//! PostgreSQL-style heap or the Cassandra-style LSM tree, selected by
//! [`EngineConfig::backend`](profiles::EngineConfig) — the full
//! configuration space is `ProfileKind` × `DeleteStrategy` ×
//! [`BackendKind`].

pub mod db;
pub mod driver;
pub mod erasure;
pub mod pia;
pub mod profiles;
pub mod space;
pub mod sweeper;

pub use datacase_storage::backend::{BackendKind, BackendStats};
pub use db::{CompliantDb, OpResult};
pub use driver::{run_ops, sharded_run, RunStats, ShardedRun};
pub use erasure::{lsm_erase, probe_on, LsmEraseOutcome};
pub use pia::{assess, certify, Certificate, PiaReport};
pub use profiles::{EngineConfig, ProfileKind};
pub use space::SpaceReport;
pub use sweeper::{sweep, SweepReport, SweeperConfig};
