//! The erasure executor: grounded interpretations → system-action plans,
//! executed immediately (the compliance path, as opposed to the workload
//! path's periodic maintenance).
//!
//! This is step ③ of Figure 2 made concrete: each
//! [`ErasureInterpretation`] maps to a
//! [`StorageBackend`](datacase_storage::backend::StorageBackend) plan of
//! Table 1 — heap mechanics (hide / DELETE+VACUUM / VACUUM FULL / WAL
//! scrub + sanitise) or LSM mechanics (flagged version / tombstone+flush /
//! compaction / run purge) — and after execution the [`probe`] verifies
//! the IR / II / Inv properties *empirically* against the forensic
//! scanner and the provenance graph, on either backend.
//!
//! The executor itself is crate-internal: callers reach it through
//! [`Request::Erase`](crate::frontend::Request::Erase) and
//! [`Request::Restore`](crate::frontend::Request::Restore) on a session.

use datacase_core::action::Action;
use datacase_core::grounding::erasure::ErasureInterpretation;
use datacase_core::grounding::properties::{ErasureProperties, PropertyProbe};
use datacase_core::history::HistoryTuple;
use datacase_core::ids::UnitId;
use datacase_core::purpose::well_known as wk;
use datacase_core::unit::ErasureStatus;
use datacase_sim::fault::CrashPoint;
use datacase_storage::backend::{BackendKind, MaintenanceDepth};
use datacase_storage::lsm::LsmTree;

use crate::db::CompliantDb;

/// Execute the full system-action plan for `interp` on the unit stored at
/// `key`, immediately (right-to-erasure handling, Table 1 row). The
/// erase is attributed to `entity` in the action history — the actor the
/// frontend authenticated (or the controller, for sweeper-initiated
/// retention erasure).
///
/// Returns false if the key is unknown.
pub(crate) fn erase_now(
    db: &mut CompliantDb,
    key: u64,
    interp: ErasureInterpretation,
    entity: datacase_core::ids::EntityId,
) -> bool {
    let Some(unit) = db.unit_of_key(key) else {
        return false;
    };
    let now = db.clock().now();
    let controller = db.controller();
    // Escalation support (the Figure-3 staged timeline): a unit already
    // deleted at a weaker interpretation can be erased "harder" — the row
    // removal is then a no-op and only the stronger plan steps run.
    let already_rank = db.state().unit(unit).map(|u| u.erasure.rank()).unwrap_or(0);

    // Cascade first (strong/permanent): identifying descendants go too.
    let mut descendants = Vec::new();
    if interp.implies(ErasureInterpretation::StronglyDeleted) {
        descendants = db.state().provenance().identifying_descendants(unit);
        for &d in &descendants {
            if let Some(dkey) = db.key_of_unit(d) {
                let _ = db.backend_mut().delete(dkey);
            }
            let at = db.clock().now();
            let already = db
                .state()
                .unit(d)
                .map(|u| u.erasure.rank() >= 2)
                .unwrap_or(true);
            if !already {
                db.state_mut()
                    .mark_erased(d, ErasureStatus::Deleted { since: at }, at);
                db.record_history(HistoryTuple {
                    unit: d,
                    purpose: wk::compliance_erase(),
                    entity: controller,
                    action: Action::Erase(ErasureInterpretation::Deleted),
                    at,
                });
            }
        }
    }

    let remove_row = |db: &mut CompliantDb| -> bool {
        if already_rank >= 2 {
            true // the row is already physically gone or dead
        } else {
            // A reversibly-inaccessible (rank 1) row still exists on the
            // backend; delete it like a live one.
            db.backend_mut().delete(key).is_ok()
        }
    };

    let status = match interp {
        ErasureInterpretation::ReversiblyInaccessible => {
            if db.backend_mut().set_hidden(key, true).is_err() {
                return false;
            }
            ErasureStatus::ReversiblyInaccessible { since: now }
        }
        ErasureInterpretation::Deleted => {
            if !remove_row(db) {
                return false;
            }
            db.backend_mut().maintain(MaintenanceDepth::Lazy);
            ErasureStatus::Deleted { since: now }
        }
        ErasureInterpretation::StronglyDeleted => {
            if !remove_row(db) {
                return false;
            }
            db.backend_mut().maintain(MaintenanceDepth::Full);
            ErasureStatus::StronglyDeleted { since: now }
        }
        ErasureInterpretation::PermanentlyDeleted => {
            if !remove_row(db) {
                return false;
            }
            db.backend_mut().maintain(MaintenanceDepth::Full);
            db.backend_mut().purge_unit(unit.0);
            db.logger_mut().redact_unit(unit);
            // Descendants erased by the cascade get their retained log
            // copies purged too — permanent deletion leaves no trail of
            // the subject in any log-shaped layer.
            for &d in &descendants {
                db.backend_mut().purge_unit(d.0);
                db.logger_mut().redact_unit(d);
            }
            db.backend_mut().sanitize(3);
            // Chaos tap: crash between purging the unit's rows/logs and
            // destroying its key — recovery must still converge to zero
            // residuals under crypto-erasure.
            db.config().fault.hit(CrashPoint::DestroyKey);
            if let Some(vault) = db.vault_mut() {
                vault.destroy_key(unit.0);
                for &d in &descendants {
                    vault.destroy_key(d.0);
                }
            }
            ErasureStatus::PermanentlyDeleted { since: now }
        }
    };

    // Consent is withdrawn wholesale with the erasure request.
    let at = db.clock().now();
    if let Some(u) = db.state_mut().unit_mut(unit) {
        u.policies.revoke_all(at);
    }
    // Revocation through the versioned enforcer bumps the policy epoch:
    // every cached decision for the unit's class is structurally stale
    // from here on, in this session and every other.
    db.enforcer_mut().revoke_all(unit, at);
    db.state_mut().mark_erased(unit, status, at);
    db.record_history(HistoryTuple {
        unit,
        purpose: wk::compliance_erase(),
        entity,
        action: Action::Erase(interp),
        at,
    });
    if interp == ErasureInterpretation::PermanentlyDeleted {
        let at2 = db.clock().now();
        db.record_history(HistoryTuple {
            unit,
            purpose: wk::compliance_erase(),
            entity,
            action: Action::Sanitize,
            at: at2,
        });
    }
    true
}

/// Restore a reversibly-inaccessible unit (the inverse action that makes
/// the interpretation *invertible* in Table 1). Returns false if the unit
/// is not in the reversible state.
pub(crate) fn restore_now(db: &mut CompliantDb, key: u64) -> bool {
    let Some(unit) = db.unit_of_key(key) else {
        return false;
    };
    let restorable = db
        .state()
        .unit(unit)
        .map(|u| matches!(u.erasure, ErasureStatus::ReversiblyInaccessible { .. }))
        .unwrap_or(false);
    if !restorable {
        return false;
    }
    if db.backend_mut().set_hidden(key, false).is_err() {
        return false;
    }
    let at = db.clock().now();
    let controller = db.controller();
    db.state_mut().unit_mut(unit).expect("checked").restore();
    db.record_history(HistoryTuple {
        unit,
        purpose: wk::subject_access(),
        entity: controller,
        action: Action::Restore,
        at,
    });
    true
}

/// Empirically measure (IR, II, Inv) for one interpretation on a fresh
/// heap-backed engine — the measured side of Table 1. See [`probe_on`]
/// for the backend-parameterised version.
///
/// Scenario: a subject's record plus an *identifying, invertible* derived
/// copy (an encrypted backup). After erasure:
///
/// * **IR** — can any entity still read the unit through the API with no
///   active policy? (The probe tries; enforcement or physical absence must
///   stop it.)
/// * **II** — can the unit be inferred from dependent data (provenance
///   reconstruction from the surviving copy)?
/// * **Inv** — does the restore action bring the unit back?
pub fn probe(interp: ErasureInterpretation) -> PropertyProbe {
    probe_on(BackendKind::Heap, interp)
}

/// [`probe`] over a chosen storage substrate: the paper's claim that the
/// grounded properties hold *independently of the underlying system*,
/// measured per backend.
pub fn probe_on(backend: BackendKind, interp: ErasureInterpretation) -> PropertyProbe {
    use crate::db::Actor;
    use crate::frontend::{Frontend, Reply, Request, Session};
    use datacase_workloads::record::GdprMetadata;

    let mut config = crate::profiles::EngineConfig::p_sys().with_backend(backend);
    config.tuple_encryption = None; // stock-engine-like storage for the probe
    config.delete_logs_on_erase = false;
    let mut fe = Frontend::new(config);
    let controller = Session::new(Actor::Controller);

    let payload = b"PROBE-SENSITIVE-PAYLOAD-0001".to_vec();
    let meta = GdprMetadata {
        subject: 1,
        purpose: wk::smart_space(),
        ttl: datacase_sim::time::Ts::from_secs(1_000_000),
        origin_device: 0,
        objects_to_sharing: false,
    };
    assert!(fe
        .run(
            &controller,
            Request::Create {
                key: 1,
                payload: payload.clone(),
                metadata: meta,
            },
        )
        .is_done());
    let unit = fe.unit_of_key(1).expect("created");
    let processor_entity = fe.db().processor();

    // Derived identifying, invertible copy (e.g. an analytics mirror).
    let derived = fe
        .forensic()
        .plant_derived(&[unit], "mirror-copy", true, true, &payload, 2);
    let now = fe.clock().now();
    fe.forensic().inject_history(HistoryTuple {
        unit,
        purpose: wk::analytics(),
        entity: processor_entity,
        action: Action::Derive { output: derived },
        at: now,
    });

    let mut notes = Vec::new();
    assert!(
        fe.run(
            &controller,
            Request::Erase {
                key: 1,
                interpretation: interp,
            },
        )
        .outcome
        .is_ok(),
        "erasure must execute"
    );

    // IR: read attempts with all policies revoked.
    let read_as_processor = fe
        .run(&Session::new(Actor::Processor), Request::Read { key: 1 })
        .outcome;
    let read_as_subject = fe
        .run(&Session::new(Actor::Subject), Request::Read { key: 1 })
        .outcome;
    let illegal_read = matches!(read_as_processor, Ok(Reply::Value(_)))
        || matches!(read_as_subject, Ok(Reply::Value(_)));
    notes.push(format!(
        "post-erase reads: processor={read_as_processor:?} subject={read_as_subject:?}"
    ));

    // II: model-level reconstruction from surviving dependent data.
    let alive: Vec<UnitId> = fe
        .state()
        .units()
        .filter(|u| !u.erasure.is_erased())
        .map(|u| u.id)
        .collect();
    let alive_fn = move |u: UnitId| alive.contains(&u);
    let illegal_inference = fe.state().provenance().reconstructable(unit, &alive_fn)
        || fe
            .state()
            .unit(unit)
            .map(|u| u.erasure.rank() <= 1)
            .unwrap_or(false);
    let residuals = fe.forensic().scan(b"PROBE-SENSITIVE-PAYLOAD-0001");
    notes.push(format!("forensic: {}", residuals.describe()));

    // Inv: does restore bring it back?
    let restored = fe.run(&controller, Request::Restore { key: 1 }).outcome;
    let invertible = restored.is_ok()
        && matches!(
            fe.run(&Session::new(Actor::Subject), Request::Read { key: 1 })
                .outcome,
            Ok(Reply::Value(_)) | Err(crate::error::EngineError::Denied { .. })
        )
        && fe
            .state()
            .unit(unit)
            .map(|u| !u.erasure.is_erased())
            .unwrap_or(false);

    PropertyProbe {
        interpretation: interp,
        measured: ErasureProperties {
            illegal_read,
            illegal_inference,
            invertible,
        },
        notes,
    }
}

/// Outcome of erasing a key in the LSM backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LsmEraseOutcome {
    /// Entries physically purged.
    pub purged_entries: usize,
    /// Whether a full compaction ran.
    pub compacted: bool,
}

/// Execute the LSM grounding of an interpretation (Table 1's LSM rows):
/// tombstone for deletion, plus forced compaction for delete-and-above,
/// plus per-unit purge for permanent deletion.
pub fn lsm_erase(
    tree: &mut LsmTree,
    key: u64,
    unit_id: u64,
    interp: ErasureInterpretation,
) -> LsmEraseOutcome {
    match interp {
        ErasureInterpretation::ReversiblyInaccessible => {
            // LSM has no in-place flag; model hides by overwriting with a
            // marker value that readers filter (here: an empty payload).
            tree.put(key, unit_id, b"");
            LsmEraseOutcome {
                purged_entries: 0,
                compacted: false,
            }
        }
        ErasureInterpretation::Deleted | ErasureInterpretation::StronglyDeleted => {
            tree.delete(key, unit_id);
            tree.compact_all();
            LsmEraseOutcome {
                purged_entries: 0,
                compacted: true,
            }
        }
        ErasureInterpretation::PermanentlyDeleted => {
            tree.delete(key, unit_id);
            tree.compact_all();
            let purged = tree.purge_unit(unit_id);
            LsmEraseOutcome {
                purged_entries: purged,
                compacted: true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Actor;
    use crate::frontend::{Frontend, Request, Session};
    use datacase_core::grounding::properties::ErasureProperties;
    use datacase_workloads::record::GdprMetadata;

    fn erase(fe: &mut Frontend, key: u64, interp: ErasureInterpretation) -> bool {
        fe.run(
            &Session::new(Actor::Controller),
            Request::Erase {
                key,
                interpretation: interp,
            },
        )
        .outcome
        .is_ok()
    }

    #[test]
    fn probes_match_table_1_expected_matrix_on_both_backends() {
        for backend in BackendKind::ALL {
            for interp in ErasureInterpretation::ALL {
                let p = probe_on(backend, interp);
                assert_eq!(
                    p.measured,
                    ErasureProperties::expected(interp),
                    "{backend:?}/{interp}: notes {:?}",
                    p.notes
                );
            }
        }
    }

    #[test]
    fn permanent_delete_clears_all_forensic_layers() {
        let mut config = crate::profiles::EngineConfig::p_sys();
        config.tuple_encryption = None;
        let mut fe = Frontend::new(config);
        let meta = GdprMetadata {
            subject: 1,
            purpose: wk::smart_space(),
            ttl: datacase_sim::time::Ts::from_secs(1_000_000),
            origin_device: 0,
            objects_to_sharing: false,
        };
        fe.run(
            &Session::new(Actor::Controller),
            Request::Create {
                key: 9,
                payload: b"PERMANENT-TARGET-XYZ".to_vec(),
                metadata: meta,
            },
        );
        assert!(erase(&mut fe, 9, ErasureInterpretation::PermanentlyDeleted));
        let f = fe.forensic().scan(b"PERMANENT-TARGET-XYZ");
        assert!(!f.any(), "residuals: {}", f.describe());
    }

    #[test]
    fn reversible_then_restore_roundtrip() {
        let mut fe = Frontend::new(crate::profiles::EngineConfig::p_base());
        let meta = GdprMetadata {
            subject: 2,
            purpose: wk::billing(),
            ttl: datacase_sim::time::Ts::from_secs(1_000_000),
            origin_device: 0,
            objects_to_sharing: false,
        };
        fe.run(
            &Session::new(Actor::Controller),
            Request::Create {
                key: 3,
                payload: vec![1, 2, 3],
                metadata: meta,
            },
        );
        assert!(erase(
            &mut fe,
            3,
            ErasureInterpretation::ReversiblyInaccessible
        ));
        let controller = Session::new(Actor::Controller);
        assert!(fe
            .run(&controller, Request::Restore { key: 3 })
            .outcome
            .is_ok());
        assert!(
            fe.run(&controller, Request::Restore { key: 3 })
                .outcome
                .is_err(),
            "already restored"
        );
    }

    #[test]
    fn strong_delete_cascades_to_identifying_derived() {
        let mut config = crate::profiles::EngineConfig::p_sys();
        config.tuple_encryption = None;
        let mut fe = Frontend::new(config);
        let meta = GdprMetadata {
            subject: 5,
            purpose: wk::analytics(),
            ttl: datacase_sim::time::Ts::from_secs(1_000_000),
            origin_device: 0,
            objects_to_sharing: false,
        };
        fe.run(
            &Session::new(Actor::Controller),
            Request::Create {
                key: 1,
                payload: b"base-data".to_vec(),
                metadata: meta,
            },
        );
        let unit = fe.unit_of_key(1).unwrap();
        let derived = fe
            .forensic()
            .plant_derived(&[unit], "copy", true, true, b"base-data", 50);
        assert!(erase(&mut fe, 1, ErasureInterpretation::StronglyDeleted));
        assert!(fe
            .state()
            .unit(derived)
            .map(|u| u.erasure.is_erased())
            .unwrap());
        assert_eq!(
            fe.forensic().raw_read(50, true),
            None,
            "derived row deleted"
        );
    }

    #[test]
    fn lsm_groundings_execute() {
        let mut t = LsmTree::default_single();
        t.put(1, 100, b"lsm-pii-data");
        t.flush();
        let out = lsm_erase(&mut t, 1, 100, ErasureInterpretation::Deleted);
        assert!(out.compacted);
        assert_eq!(t.get(1), None);
        assert_eq!(t.scan_physical(b"lsm-pii-data"), 0);
    }

    #[test]
    fn lsm_permanent_purges_unit() {
        let mut t = LsmTree::default_single();
        t.put(1, 100, b"unit-a");
        t.put(2, 100, b"unit-a-second");
        t.put(3, 200, b"unit-b");
        t.flush();
        let out = lsm_erase(&mut t, 1, 100, ErasureInterpretation::PermanentlyDeleted);
        assert!(out.compacted);
        assert_eq!(t.get(3).unwrap(), b"unit-b");
        assert_eq!(t.scan_physical(b"unit-a"), 0);
    }
}
