#![deny(missing_docs)]
//! The session-scoped, batch-first engine frontend.
//!
//! This module is the **only public write path** into a compliant engine:
//! callers open a [`Frontend`] over an [`EngineConfig`], describe who is
//! asking (and why, and until when) with a [`Session`], and submit typed
//! [`Request`]s as [`Batch`]es. Every request is answered with a
//! [`Response`] carrying `Result<Reply, EngineError>` plus an [`AuditRef`]
//! pointing at the audit-log records the request produced — so the
//! regulation groundings (policy enforcement, erasure semantics, audit
//! completeness) hold at the system boundary by construction, with no
//! raw-accessor side doors.
//!
//! ```
//! use datacase_engine::frontend::{Frontend, Request, Session};
//! use datacase_engine::profiles::EngineConfig;
//! use datacase_engine::Actor;
//!
//! let mut fe = Frontend::new(EngineConfig::p_base());
//! let controller = Session::new(Actor::Controller);
//! let metadata = datacase_workloads::record::GdprMetadata {
//!     subject: 7,
//!     purpose: datacase_core::purpose::well_known::billing(),
//!     ttl: datacase_sim::time::Ts::from_secs(3600),
//!     origin_device: 0,
//!     objects_to_sharing: false,
//! };
//! let resp = fe.run(
//!     &controller,
//!     Request::Create { key: 1, payload: b"reading".to_vec(), metadata },
//! );
//! assert!(resp.is_done());
//! ```
//!
//! Deliberate escape hatch: [`Frontend::forensic`] returns a
//! clearly-marked guard for tests, probes, and seized-disk simulations.
//! It bypasses enforcement and must never appear on a production path.

use datacase_core::grounding::erasure::ErasureInterpretation;
use datacase_core::history::HistoryTuple;
use datacase_core::ids::UnitId;
use datacase_core::purpose::PurposeId;
use datacase_core::value::Value;
use datacase_sim::time::Ts;
use datacase_storage::backend::DurableSnapshot;
use datacase_storage::forensic::ForensicFindings;
use datacase_workloads::opstream::{MetaField, MetaSelector, Op};
use datacase_workloads::record::GdprMetadata;

use crate::db::{Actor, CompliantDb};
use crate::error::EngineError;
use crate::profiles::EngineConfig;

// ---------------------------------------------------------------------
// Requests and batches
// ---------------------------------------------------------------------

/// One typed request to the engine.
///
/// The first seven variants mirror the workload vocabulary
/// ([`Op`]); the last two are the compliance path (right to erasure,
/// Table 1) that previously required reaching into the engine's internals.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Insert a new record with GDPR metadata (consent capture).
    Create {
        /// Record key.
        key: u64,
        /// Personal-data payload.
        payload: Vec<u8>,
        /// GDPR metadata attached at collection.
        metadata: GdprMetadata,
    },
    /// Point read of the record's payload.
    Read {
        /// Record key.
        key: u64,
    },
    /// Replace the record's payload.
    Update {
        /// Record key.
        key: u64,
        /// New payload.
        payload: Vec<u8>,
    },
    /// Workload-path delete (grounded per the engine's
    /// [`DeleteStrategy`](crate::profiles::DeleteStrategy)).
    Delete {
        /// Record key.
        key: u64,
    },
    /// Read the record's metadata row (policies, purpose, TTL).
    ReadMeta {
        /// Record key.
        key: u64,
    },
    /// Update one metadata field (policy change + subject notification).
    UpdateMeta {
        /// Record key.
        key: u64,
        /// Which field.
        field: MetaField,
    },
    /// Read data *via* metadata (e.g. "all records for purpose X").
    ReadByMeta {
        /// The selector.
        selector: MetaSelector,
    },
    /// Execute a grounded erasure interpretation immediately (the
    /// compliance path: an Art. 17 request, not a workload delete).
    Erase {
        /// Record key.
        key: u64,
        /// The grounding to execute.
        interpretation: ErasureInterpretation,
    },
    /// Restore a reversibly-inaccessible record (the inverse action that
    /// makes that grounding invertible).
    Restore {
        /// Record key.
        key: u64,
    },
}

impl Request {
    /// Short label for statistics.
    pub fn label(&self) -> &'static str {
        match self {
            Request::Create { .. } => "create",
            Request::Read { .. } => "read",
            Request::Update { .. } => "update",
            Request::Delete { .. } => "delete",
            Request::ReadMeta { .. } => "read-meta",
            Request::UpdateMeta { .. } => "update-meta",
            Request::ReadByMeta { .. } => "read-by-meta",
            Request::Erase { .. } => "erase",
            Request::Restore { .. } => "restore",
        }
    }

    /// The key the request targets, when key-addressed.
    pub fn key(&self) -> Option<u64> {
        match self {
            Request::Create { key, .. }
            | Request::Read { key }
            | Request::Update { key, .. }
            | Request::Delete { key }
            | Request::ReadMeta { key }
            | Request::UpdateMeta { key, .. }
            | Request::Erase { key, .. }
            | Request::Restore { key } => Some(*key),
            Request::ReadByMeta { .. } => None,
        }
    }
}

impl From<&Op> for Request {
    fn from(op: &Op) -> Request {
        match op {
            Op::Create {
                key,
                payload,
                metadata,
            } => Request::Create {
                key: *key,
                payload: payload.clone(),
                metadata: metadata.clone(),
            },
            Op::ReadData { key } => Request::Read { key: *key },
            Op::UpdateData { key, payload } => Request::Update {
                key: *key,
                payload: payload.clone(),
            },
            Op::DeleteData { key } => Request::Delete { key: *key },
            Op::ReadMeta { key } => Request::ReadMeta { key: *key },
            Op::UpdateMeta { key, field } => Request::UpdateMeta {
                key: *key,
                field: *field,
            },
            Op::ReadByMetadata { selector } => Request::ReadByMeta {
                selector: *selector,
            },
        }
    }
}

impl From<Op> for Request {
    fn from(op: Op) -> Request {
        Request::from(&op)
    }
}

/// An ordered batch of [`Request`]s submitted as one unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Batch {
    requests: Vec<Request>,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Batch {
        Batch::default()
    }

    /// Append a request, builder-style.
    pub fn with(mut self, request: Request) -> Batch {
        self.requests.push(request);
        self
    }

    /// Append a request.
    pub fn push(&mut self, request: Request) {
        self.requests.push(request);
    }

    /// Convert a workload op stream into a batch.
    pub fn from_ops(ops: &[Op]) -> Batch {
        ops.iter().map(Request::from).collect()
    }

    /// The requests, in submission order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

impl From<Vec<Request>> for Batch {
    fn from(requests: Vec<Request>) -> Batch {
        Batch { requests }
    }
}

impl FromIterator<Request> for Batch {
    fn from_iter<I: IntoIterator<Item = Request>>(iter: I) -> Batch {
        Batch {
            requests: iter.into_iter().collect(),
        }
    }
}

// ---------------------------------------------------------------------
// Replies and responses
// ---------------------------------------------------------------------

/// The successful outcome of one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Mutation applied.
    Done,
    /// Read returned this many payload bytes.
    Value(usize),
    /// Metadata-based read returned this many rows.
    Rows(usize),
    /// The erasure grounding executed.
    Erased(ErasureInterpretation),
    /// The record was restored from reversible inaccessibility.
    Restored,
}

/// A pointer into the audit log: the records one request produced.
///
/// Sequence numbers are the engine's global, monotonically increasing
/// audit sequence; `records == 0` means the request wrote no audit
/// records (e.g. it failed before reaching the logging layer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditRef {
    /// First audit sequence number written by the request.
    pub start: u64,
    /// How many audit records the request wrote.
    pub records: u64,
    /// Engine time when the response was produced.
    pub at: Ts,
}

impl AuditRef {
    /// Did the request write any audit records?
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Last audit sequence number covered, if any.
    pub fn last(&self) -> Option<u64> {
        (self.records > 0).then(|| self.start + self.records - 1)
    }
}

/// The engine's answer to one [`Request`] of a batch.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Position of the request within its batch.
    pub index: usize,
    /// What happened: a typed reply, or a typed error.
    pub outcome: Result<Reply, EngineError>,
    /// The audit-log records this request produced.
    pub audit: AuditRef,
}

impl Response {
    /// The reply, if the request succeeded.
    pub fn reply(&self) -> Option<Reply> {
        self.outcome.as_ref().ok().copied()
    }

    /// The error, if the request failed.
    pub fn err(&self) -> Option<&EngineError> {
        self.outcome.as_ref().err()
    }

    /// Did the request succeed with [`Reply::Done`]?
    pub fn is_done(&self) -> bool {
        matches!(self.outcome, Ok(Reply::Done))
    }

    /// Bytes returned, when the reply is a [`Reply::Value`].
    pub fn value(&self) -> Option<usize> {
        match self.outcome {
            Ok(Reply::Value(n)) => Some(n),
            _ => None,
        }
    }

    /// Rows returned, when the reply is a [`Reply::Rows`].
    pub fn rows(&self) -> Option<usize> {
        match self.outcome {
            Ok(Reply::Rows(n)) => Some(n),
            _ => None,
        }
    }

    /// Was the request denied by policy enforcement?
    pub fn is_denied(&self) -> bool {
        self.err().is_some_and(EngineError::is_denied)
    }

    /// Did the request target a key that never existed?
    pub fn is_not_found(&self) -> bool {
        self.err().is_some_and(EngineError::is_not_found)
    }
}

// ---------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------

/// Who is asking, for what declared purpose, and until when.
///
/// A session is the unit of authentication and intent: every batch is
/// submitted under exactly one session, and the frontend's single
/// enforcement choke point derives entities, purposes, and deadline
/// gating from it. Sessions are cheap descriptors — build one per actor
/// and reuse it across batches.
#[derive(Clone, Debug, PartialEq)]
pub struct Session {
    actor: Actor,
    purpose: Option<PurposeId>,
    deadline: Option<Ts>,
    scope: Option<datacase_core::tenant::KeyRange>,
}

impl Session {
    /// A session for `actor` with no declared purpose (each request's
    /// purpose is derived from the actor and the record's collection
    /// metadata, as workload streams expect), no deadline, and no
    /// key-scope.
    pub fn new(actor: Actor) -> Session {
        Session {
            actor,
            purpose: None,
            deadline: None,
            scope: None,
        }
    }

    /// Declare a processing purpose: data-access requests in this session
    /// are checked against `purpose` instead of the per-record default —
    /// purpose limitation made explicit at the boundary.
    pub fn for_purpose(mut self, purpose: PurposeId) -> Session {
        self.purpose = Some(purpose);
        self
    }

    /// Gate the session with a deadline: batches submitted after
    /// `deadline` (engine time) are denied wholesale at admission.
    pub fn until(mut self, deadline: Ts) -> Session {
        self.deadline = Some(deadline);
        self
    }

    /// The authenticated actor.
    pub fn actor(&self) -> Actor {
        self.actor
    }

    /// The declared purpose, if any.
    pub fn purpose(&self) -> Option<PurposeId> {
        self.purpose
    }

    /// Confine the session to a half-open block of the keyspace: any
    /// key-addressed request outside `scope` is denied at admission, and
    /// metadata scans only see records inside it. This is how the
    /// multi-tenant gateway pins each tenant's sessions to the tenant's
    /// own keyspace block.
    pub fn scoped(mut self, scope: datacase_core::tenant::KeyRange) -> Session {
        self.scope = Some(scope);
        self
    }

    /// The admission deadline, if any.
    pub fn deadline(&self) -> Option<Ts> {
        self.deadline
    }

    /// The key-scope, if any.
    pub fn scope(&self) -> Option<datacase_core::tenant::KeyRange> {
        self.scope
    }
}

// ---------------------------------------------------------------------
// The frontend
// ---------------------------------------------------------------------

/// The compliant engine's public face: owns the (crate-internal)
/// `CompliantDb` and executes [`Batch`]es of [`Request`]s through a
/// single enforcement choke point.
pub struct Frontend {
    db: CompliantDb,
}

impl std::fmt::Debug for Frontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Frontend").field("db", &self.db).finish()
    }
}

impl Frontend {
    /// Build a frontend over a fresh engine for `config`.
    pub fn new(config: EngineConfig) -> Frontend {
        Frontend {
            db: CompliantDb::new(config),
        }
    }

    /// Build a frontend sharing an existing clock/meter (sharded runs).
    pub fn with_clock(
        config: EngineConfig,
        clock: datacase_sim::SimClock,
        meter: std::sync::Arc<datacase_sim::Meter>,
    ) -> Frontend {
        Frontend {
            db: CompliantDb::with_clock(config, clock, meter),
        }
    }

    /// Submit a batch under `session`, returning one [`Response`] per
    /// request in order.
    ///
    /// This is the single enforcement choke point: session admission
    /// (deadline), purpose resolution, policy checks, audit-ref
    /// assignment, and checkpoint cadence all happen here and nowhere
    /// else — execution itself runs through the staged batch pipeline
    /// ([`crate::exec`]): requests are *planned* into read waves and
    /// serial barriers, *decided* against the epoch-versioned policy
    /// cache, *applied* (read payload work fans out across scoped worker
    /// threads), and *accounted* (audit records committed in batch
    /// order). Submitting one batch of *n* requests is semantically
    /// identical to submitting *n* single-request batches, and pipelined
    /// execution is observably identical to serial execution down to the
    /// audit chain's bytes (the `prop_frontend` parity suite holds the
    /// engine to both) — which is why the deadline gate is evaluated per
    /// request: a deadline crossing mid-batch denies the tail exactly as
    /// single-request submissions would.
    pub fn submit(&mut self, session: &Session, batch: &Batch) -> Vec<Response> {
        crate::exec::execute(&mut self.db, session, batch.requests())
    }

    /// Submit a single request (a one-element batch).
    pub fn run(&mut self, session: &Session, request: Request) -> Response {
        crate::exec::execute(&mut self.db, session, std::slice::from_ref(&request))
            .pop()
            .expect("one request in, one response out")
    }

    /// Submit a workload op stream as one batch under `session`.
    ///
    /// Ops are converted (each conversion clones the op's payload into
    /// its [`Request`]) and executed in bounded sub-batches, so the whole
    /// stream is never materialized as a second copy; response indices
    /// still number the full stream. Sub-batching is invisible by the
    /// batch-parity contract — splitting a batch never changes results.
    pub fn submit_ops(&mut self, session: &Session, ops: &[Op]) -> Vec<Response> {
        const SUBMIT_CHUNK: usize = 1024;
        let mut responses = Vec::with_capacity(ops.len());
        for (chunk_idx, chunk) in ops.chunks(SUBMIT_CHUNK).enumerate() {
            let requests: Vec<Request> = chunk.iter().map(Request::from).collect();
            let offset = chunk_idx * SUBMIT_CHUNK;
            responses.extend(
                crate::exec::execute(&mut self.db, session, &requests)
                    .into_iter()
                    .map(|mut r| {
                        r.index += offset;
                        r
                    }),
            );
        }
        responses
    }

    // -- read-only surface -------------------------------------------------

    /// The shared simulated clock.
    pub fn clock(&self) -> &datacase_sim::SimClock {
        self.db.clock()
    }

    /// The shared work meter.
    pub fn meter(&self) -> &std::sync::Arc<datacase_sim::Meter> {
        self.db.meter()
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        self.db.config()
    }

    /// The abstract Data-CASE state.
    pub fn state(&self) -> &datacase_core::state::DatabaseState {
        self.db.state()
    }

    /// The action history.
    pub fn history(&self) -> &datacase_core::history::ActionHistory {
        self.db.history()
    }

    /// The entity registry.
    pub fn entities(&self) -> &datacase_core::entity::EntityRegistry {
        self.db.entities()
    }

    /// The purpose registry.
    pub fn purposes(&self) -> &datacase_core::purpose::PurposeRegistry {
        self.db.purposes()
    }

    /// Number of requests denied by policy enforcement so far.
    pub fn denied(&self) -> u64 {
        self.db.denied()
    }

    /// The engine's current policy epoch: bumped by every policy-mutating
    /// action (grant, revocation, erasure, metadata update). Decision
    /// caching is correct because entries stamped below the epoch of
    /// their unit class are structurally unreachable.
    pub fn policy_epoch(&self) -> datacase_policy::enforcer::PolicyEpoch {
        self.db.policy_epoch()
    }

    /// Unit id stored under a key.
    pub fn unit_of_key(&self, key: u64) -> Option<UnitId> {
        self.db.unit_of_key(key)
    }

    /// Key a unit is stored under.
    pub fn key_of_unit(&self, unit: UnitId) -> Option<u64> {
        self.db.key_of_unit(unit)
    }

    /// Backend statistics on the substrate-independent vocabulary.
    pub fn backend_stats(&self) -> datacase_storage::backend::BackendStats {
        self.db.backend_stats()
    }

    /// Number of audit-log records written so far.
    pub fn audit_records(&self) -> usize {
        self.db.logger().records()
    }

    /// Run the compliance checker against this engine's model.
    pub fn compliance_report(
        &mut self,
        regulation: &datacase_core::regulation::Regulation,
    ) -> datacase_core::checker::ComplianceReport {
        self.db.compliance_report(regulation)
    }

    /// The raw engine, for in-crate subsystems (sweeper, space, PIA).
    pub(crate) fn db(&self) -> &CompliantDb {
        &self.db
    }

    /// Mutable raw engine, for in-crate subsystems only.
    pub(crate) fn db_mut(&mut self) -> &mut CompliantDb {
        &mut self.db
    }

    /// The forensic / test-only escape hatch.
    ///
    /// Everything behind this guard **bypasses enforcement**: it models
    /// what a seized disk, a rogue administrator, or a test harness can
    /// see and do. Production paths must never call it — the compliant
    /// write path is [`Frontend::submit`].
    pub fn forensic(&mut self) -> Forensic<'_> {
        Forensic { db: &mut self.db }
    }
}

/// Enforcement-bypassing guard returned by [`Frontend::forensic`].
///
/// Intended for tests, property probes, and the seized-disk scenarios in
/// the examples; clearly not part of the compliant request path.
pub struct Forensic<'f> {
    db: &'f mut CompliantDb,
}

impl Forensic<'_> {
    /// Scan all persistent layers (pages, WAL, runs, audit logs) for
    /// `needle`, checkpointing first so buffered state is visible.
    pub fn scan(&mut self, needle: &[u8]) -> ForensicFindings {
        self.db.forensic(needle)
    }

    /// Read a record's stored bytes directly off the substrate,
    /// optionally including reversibly-hidden versions.
    pub fn raw_read(&mut self, key: u64, include_hidden: bool) -> Option<Vec<u8>> {
        self.db.backend_mut().read(key, include_hidden)
    }

    /// Force a checkpoint (flush + WAL recycle) now.
    pub fn checkpoint(&mut self) {
        self.db.backend_mut().checkpoint();
    }

    /// Inject a history tuple as if enforcement had been bypassed (the
    /// violation-injection scenarios feeding the compliance checker).
    pub fn inject_history(&mut self, tuple: HistoryTuple) {
        self.db.record_history(tuple);
    }

    /// Derive a unit from `sources` (a mirror/backup copy), store its
    /// payload under `key`, and bind it so erasure cascades can find it.
    pub fn plant_derived(
        &mut self,
        sources: &[UnitId],
        how: &str,
        identifying: bool,
        invertible: bool,
        payload: &[u8],
        key: u64,
    ) -> UnitId {
        let now = self.db.clock().now();
        let unit = self.db.state_mut().derive(
            sources,
            how,
            identifying,
            invertible,
            Value::Bytes(payload.to_vec()),
            now,
        );
        self.db
            .backend_mut()
            .insert(key, unit.0, payload)
            .expect("derived insert");
        self.db.bind_derived_key(unit, key);
        unit
    }

    /// Destroy a unit's encryption key (crypto-erasure). Returns false
    /// when tuple encryption is off or the key is already gone.
    pub fn destroy_key(&mut self, unit: UnitId) -> bool {
        match self.db.vault_mut() {
            Some(vault) => vault.destroy_key(unit.0),
            None => false,
        }
    }

    /// How many keystream entries the tuple vault currently caches —
    /// `0` when tuple encryption or the keystream cache is off. Lets the
    /// erasure harnesses assert the cache actually warmed before an
    /// erasure, and actually emptied after one.
    pub fn cached_keystreams(&mut self) -> usize {
        self.db
            .vault_mut()
            .map_or(0, |vault| vault.cached_keystreams())
    }

    /// Verify the audit log's tamper-evident chain.
    pub fn verify_chain(&mut self) -> bool {
        self.db.logger_mut().verify_chain()
    }

    /// The audit chain's head MAC — a 32-byte digest over every record's
    /// bytes in order. Two engines whose heads match hold byte-identical
    /// audit chains (the pipeline-parity gate compares pipelined and
    /// serial runs through this).
    pub fn chain_head(&mut self) -> [u8; 32] {
        self.db.logger_mut().chain_head()
    }

    /// Salvage the storage substrate's durable state — exactly what
    /// survives a crash: the heap's WAL records or the LSM's committed
    /// run manifest. The chaos harness calls this on a wrecked engine
    /// (after a [`CrashSignal`](datacase_sim::fault::CrashSignal) panic
    /// was caught) and rebuilds from it via
    /// [`recover_backend`](datacase_storage::backend::recover_backend).
    pub fn durable_snapshot(&mut self) -> DurableSnapshot {
        self.db.backend_mut().durable_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacase_core::purpose::well_known as wk;
    use datacase_workloads::gdprbench::{GdprBench, Mix};

    fn meta(subject: u32) -> GdprMetadata {
        GdprMetadata {
            subject,
            purpose: wk::billing(),
            ttl: Ts::from_secs(1_000_000),
            origin_device: 0,
            objects_to_sharing: false,
        }
    }

    fn loaded(config: EngineConfig, n: usize) -> (Frontend, GdprBench) {
        let mut fe = Frontend::new(config);
        let mut bench = GdprBench::new(42, 50);
        let controller = Session::new(Actor::Controller);
        for r in fe.submit_ops(&controller, &bench.load_phase(n)) {
            assert!(r.is_done(), "load failed: {:?}", r.outcome);
        }
        (fe, bench)
    }

    #[test]
    fn op_stream_batch_roundtrip() {
        let (mut fe, _) = loaded(EngineConfig::p_base(), 100);
        let processor = Session::new(Actor::Processor);
        let r = fe.run(&processor, Request::Read { key: 5 });
        assert_eq!(r.value(), Some(100));
        assert!(!r.audit.is_empty(), "reads are audit-logged");
    }

    #[test]
    fn error_taxonomy_separates_outcomes() {
        let (mut fe, _) = loaded(EngineConfig::p_gbench(), 20);
        let subject = Session::new(Actor::Subject);
        let processor = Session::new(Actor::Processor);
        // Never-stored key: NotFound.
        let r = fe.run(&processor, Request::Read { key: 999_999 });
        assert!(matches!(r.outcome, Err(EngineError::NotFound { key }) if key == 999_999));
        // Post-erasure read on an enforcing profile: Denied (policies
        // were revoked with the erasure request).
        assert!(fe.run(&subject, Request::Delete { key: 3 }).is_done());
        let r = fe.run(&processor, Request::Read { key: 3 });
        assert!(r.is_denied(), "{:?}", r.outcome);
        // The same on a non-enforcing engine: RetentionExpired, not a
        // bare NotFound — the record is gone by design.
        let (mut fe2, _) = loaded(
            EngineConfig::stock(crate::profiles::DeleteStrategy::DeleteVacuum),
            20,
        );
        let controller = Session::new(Actor::Controller);
        assert!(fe2.run(&controller, Request::Delete { key: 3 }).is_done());
        let r = fe2.run(&controller, Request::Read { key: 3 });
        assert!(
            matches!(r.outcome, Err(EngineError::RetentionExpired { key: 3, .. })),
            "{:?}",
            r.outcome
        );
        // Duplicate create: a backend (constraint) failure.
        let r = fe2.run(
            &controller,
            Request::Create {
                key: 5,
                payload: vec![1],
                metadata: meta(1),
            },
        );
        assert!(
            r.err().is_some_and(EngineError::is_backend),
            "{:?}",
            r.outcome
        );
    }

    #[test]
    fn session_deadline_gates_admission() {
        let (mut fe, _) = loaded(EngineConfig::p_base(), 10);
        let expired = Session::new(Actor::Processor).until(Ts::ZERO);
        let rs = fe.submit(
            &expired,
            &Batch::new()
                .with(Request::Read { key: 1 })
                .with(Request::Read { key: 2 }),
        );
        assert!(rs.iter().all(Response::is_denied), "{rs:?}");
        assert!(rs.iter().all(|r| r.audit.is_empty()));
        // A live deadline admits normally.
        let live = Session::new(Actor::Processor).until(Ts::MAX);
        assert_eq!(fe.run(&live, Request::Read { key: 1 }).value(), Some(100));
    }

    #[test]
    fn declared_purpose_narrows_access() {
        let (mut fe, _) = loaded(EngineConfig::p_sys(), 10);
        // The processor declaring the audit purpose has no policy for it.
        let wrong = Session::new(Actor::Processor).for_purpose(wk::audit());
        assert!(fe.run(&wrong, Request::Read { key: 1 }).is_denied());
        // Declaring the record's collection purpose works where granted.
        let (mut fe2, _) = loaded(EngineConfig::p_sys(), 10);
        let subject = Session::new(Actor::Subject).for_purpose(wk::subject_access());
        assert!(fe2
            .run(&subject, Request::Read { key: 1 })
            .value()
            .is_some());
    }

    #[test]
    fn audit_refs_are_contiguous_and_monotone() {
        let (mut fe, mut bench) = loaded(EngineConfig::p_base(), 50);
        let subject = Session::new(Actor::Subject);
        let rs = fe.submit_ops(&subject, &bench.ops(120, Mix::wcus()));
        let mut next = None::<u64>;
        for r in &rs {
            if let Some(expected) = next {
                assert_eq!(r.audit.start, expected, "audit refs must tile the log");
            }
            next = Some(r.audit.start + r.audit.records);
        }
        assert_eq!(
            next.unwrap() - 1,
            rs.last().unwrap().audit.last().unwrap_or(next.unwrap() - 1)
        );
    }

    #[test]
    fn decision_cache_amortizes_policy_checks_without_changing_replies() {
        let run = |capacity: usize| -> (Vec<Result<Reply, EngineError>>, u64) {
            let (mut fe, _) = loaded(EngineConfig::p_sys().with_decision_cache(capacity), 10);
            let session = Session::new(Actor::Processor);
            let mut batch = Batch::new();
            for _ in 0..50 {
                batch.push(Request::Read { key: 1 });
            }
            let before = fe.meter().snapshot().policy_checks;
            let outcomes = fe
                .submit(&session, &batch)
                .into_iter()
                .map(|r| r.outcome)
                .collect();
            (outcomes, fe.meter().snapshot().policy_checks - before)
        };
        let (plain_replies, plain_checks) = run(0);
        let (cached_replies, cached_checks) = run(1024);
        assert_eq!(plain_replies, cached_replies, "caching must be invisible");
        assert!(
            cached_checks < plain_checks,
            "cache must amortize: {cached_checks} vs {plain_checks}"
        );
    }

    #[test]
    fn decision_cache_invalidated_by_policy_mutation() {
        let (mut fe, _) = loaded(EngineConfig::p_sys().with_decision_cache(1024), 10);
        let session = Session::new(Actor::Processor);
        let epoch_before = fe.policy_epoch();
        assert!(fe.run(&session, Request::Read { key: 2 }).value().is_some());
        // Erase revokes policies: the epoch moves, so the cached allow
        // (stamped at the lower epoch) is structurally stale.
        let controller = Session::new(Actor::Controller);
        assert!(fe
            .run(
                &controller,
                Request::Erase {
                    key: 2,
                    interpretation: ErasureInterpretation::Deleted,
                },
            )
            .outcome
            .is_ok());
        assert!(fe.policy_epoch() > epoch_before, "erase bumps the epoch");
        let r = fe.run(&session, Request::Read { key: 2 });
        assert!(
            r.outcome.is_err(),
            "stale cached allow leaked: {:?}",
            r.outcome
        );
    }

    #[test]
    fn cross_session_revoke_invalidates_other_sessions_cached_allow() {
        // Session B warms the cache with an allow; a revoke issued in
        // session A (the subject's erasure request) must strand that
        // entry even though B never observed the mutation: the cache is
        // frontend-wide and validity is an epoch comparison, so there is
        // no per-session staleness window at all.
        for profile in [
            crate::profiles::ProfileKind::PGBench,
            crate::profiles::ProfileKind::PSys,
        ] {
            let mut config = EngineConfig::for_profile(profile).with_decision_cache(1024);
            config.delete_strategy = crate::profiles::DeleteStrategy::TombstoneAttribute;
            let (mut fe, _) = loaded(config, 10);
            let session_b = Session::new(Actor::Processor);
            let allowed = fe.run(&session_b, Request::Read { key: 3 });
            assert!(
                allowed.value().is_some(),
                "{profile:?}: {:?}",
                allowed.outcome
            );
            let session_a = Session::new(Actor::Subject);
            assert!(fe.run(&session_a, Request::Delete { key: 3 }).is_done());
            let r = fe.run(&session_b, Request::Read { key: 3 });
            assert!(
                r.is_denied(),
                "{profile:?}: session B reused a stale allow: {:?}",
                r.outcome
            );
        }
    }

    #[test]
    fn cached_denial_is_reevaluated_after_grant_bumps_epoch() {
        // The deny-then-grant flow: a processor reading under a purpose
        // it holds no policy for is denied (and the denial cached); the
        // controller's metadata update then grants the analytics policy,
        // bumping the epoch — the cached deny must not outlive it.
        let (mut fe, _) = loaded(EngineConfig::p_sys().with_decision_cache(1024), 10);
        let analyst = Session::new(Actor::Processor).for_purpose(wk::analytics());
        let denied = fe.run(&analyst, Request::Read { key: 4 });
        assert!(denied.is_denied(), "{:?}", denied.outcome);
        // Same request again: the denial is served from the cache (no
        // fresh policy evaluation), but still metered and audit-logged.
        let before = fe.meter().snapshot();
        let denied_again = fe.run(&analyst, Request::Read { key: 4 });
        assert!(denied_again.is_denied());
        assert!(
            !denied_again.audit.is_empty(),
            "cached denials still write DENIED audit records"
        );
        let diff = fe.meter().snapshot().diff(&before);
        assert_eq!(diff.policy_checks, 0, "cached denial skips re-evaluation");
        assert_eq!(diff.denials, 1, "but the denial itself is metered");
        // MetaField::Purpose grants the processor an analytics policy.
        let controller = Session::new(Actor::Controller);
        assert!(fe
            .run(
                &controller,
                Request::UpdateMeta {
                    key: 4,
                    field: MetaField::Purpose,
                },
            )
            .is_done());
        let r = fe.run(&analyst, Request::Read { key: 4 });
        assert!(
            r.value().is_some(),
            "grant must flip the cached deny: {:?}",
            r.outcome
        );
    }

    #[test]
    fn erase_and_restore_requests_drive_the_compliance_path() {
        let (mut fe, _) = loaded(EngineConfig::p_base(), 10);
        let controller = Session::new(Actor::Controller);
        let r = fe.run(
            &controller,
            Request::Erase {
                key: 4,
                interpretation: ErasureInterpretation::ReversiblyInaccessible,
            },
        );
        assert_eq!(
            r.reply(),
            Some(Reply::Erased(ErasureInterpretation::ReversiblyInaccessible))
        );
        assert_eq!(
            fe.run(&controller, Request::Restore { key: 4 }).reply(),
            Some(Reply::Restored)
        );
        // Restoring a live record is refused.
        assert!(fe
            .run(&controller, Request::Restore { key: 4 })
            .outcome
            .is_err());
        // Erasing an unknown key is NotFound.
        let r = fe.run(
            &controller,
            Request::Erase {
                key: 12345,
                interpretation: ErasureInterpretation::Deleted,
            },
        );
        assert!(r.is_not_found());
    }

    #[test]
    fn erase_requests_are_policy_checked() {
        // A processor holds no compliance-erase policy: its erase request
        // is denied at the boundary and the record stays live. The
        // subject's and controller's requests are authorised.
        for profile in [
            crate::profiles::ProfileKind::PBase,
            crate::profiles::ProfileKind::PSys,
        ] {
            let (mut fe, _) = loaded(EngineConfig::for_profile(profile), 10);
            let r = fe.run(
                &Session::new(Actor::Processor),
                Request::Erase {
                    key: 1,
                    interpretation: ErasureInterpretation::Deleted,
                },
            );
            assert!(r.is_denied(), "{profile:?}: {:?}", r.outcome);
            let unit = fe.unit_of_key(1).unwrap();
            assert!(!fe.state().unit(unit).unwrap().erasure.is_erased());
            assert!(fe
                .run(
                    &Session::new(Actor::Subject),
                    Request::Erase {
                        key: 1,
                        interpretation: ErasureInterpretation::Deleted,
                    },
                )
                .outcome
                .is_ok());
            // Escalating the already-erased unit stays authorised even
            // though its policies were revoked with the first request.
            assert!(fe
                .run(
                    &Session::new(Actor::Controller),
                    Request::Erase {
                        key: 1,
                        interpretation: ErasureInterpretation::PermanentlyDeleted,
                    },
                )
                .outcome
                .is_ok());
        }
    }

    #[test]
    fn overdue_units_stay_erasable_after_policies_lapse() {
        let (mut fe, _) = loaded(EngineConfig::p_sys(), 5);
        // Way past every record's retention deadline: the unit policies
        // have lapsed, but retention execution must still be possible.
        fe.clock().advance_to(Ts::from_secs(400 * 24 * 3600));
        let r = fe.run(
            &Session::new(Actor::Controller),
            Request::Erase {
                key: 1,
                interpretation: ErasureInterpretation::Deleted,
            },
        );
        assert!(r.outcome.is_ok(), "{:?}", r.outcome);
    }

    #[test]
    fn restore_denied_for_processors() {
        let (mut fe, _) = loaded(EngineConfig::p_base(), 5);
        let controller = Session::new(Actor::Controller);
        assert!(fe
            .run(
                &controller,
                Request::Erase {
                    key: 1,
                    interpretation: ErasureInterpretation::ReversiblyInaccessible,
                },
            )
            .outcome
            .is_ok());
        let r = fe.run(&Session::new(Actor::Processor), Request::Restore { key: 1 });
        assert!(r.is_denied(), "{:?}", r.outcome);
        assert!(fe
            .run(&Session::new(Actor::Subject), Request::Restore { key: 1 })
            .outcome
            .is_ok());
    }

    #[test]
    fn batch_vocabulary_roundtrips_ops() {
        let mut bench = GdprBench::new(7, 20);
        let ops = bench.ops(50, Mix::wcus());
        let batch = Batch::from_ops(&ops);
        assert_eq!(batch.len(), 50);
        for (op, req) in ops.iter().zip(batch.requests()) {
            assert_eq!(op.key(), req.key());
        }
    }
}
