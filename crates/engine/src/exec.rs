//! Staged batch execution: the engine's pipeline behind
//! [`Frontend::submit`](crate::frontend::Frontend::submit).
//!
//! A submitted batch flows through four explicit stages:
//!
//! 1. **Plan** — requests are classified ([`classify`]) and grouped into
//!    *spans* separated by *barriers*. A barrier is a request that may
//!    mutate the audit store itself (the compliance verbs, and workload
//!    deletes on profiles that redact logs on erasure); everything else —
//!    reads **and** benign mutations — shares a span. Mutations always
//!    execute serially in submission order, so per-unit order is exactly
//!    the batch order.
//! 2. **Decide** — policy checks run against the epoch-versioned decision
//!    cache (`DecisionCache`): outcomes (allows **and** denials) are
//!    stamped with the [`PolicyEpoch`] they were computed at plus the
//!    policy-window horizon they hold until, and revalidated by
//!    comparison against the enforcer's current epoch — fine-grained,
//!    structural invalidation instead of a TTL or a wholesale flush.
//! 3. **Apply** — the span's deferred payload work (AES decryption of
//!    every read tuple) fans out across `std::thread::scope` workers,
//!    sharded by unit id. Everything that charges the simulated clock or
//!    assigns audit sequence numbers ran in the serial pass, so the cost
//!    stream — and with it every audit-record timestamp — is identical
//!    to sequential execution.
//! 4. **Account** — the span's audit records, queued in sequence order
//!    during the serial pass, are committed to the log store in that
//!    order (decrypted payloads patched in first), so the
//!    tamper-evidence chain is byte-identical to a sequential run's. On
//!    the P_SYS encrypted log the records' payload AES itself runs on
//!    the apply-stage workers before the in-order commit: the ciphertext
//!    is deterministic per record (`iv_from_nonce(seq)`), so the chain
//!    bytes cannot diverge from serial execution.
//!
//! The `prop_frontend` parity suite holds both modes — pipeline on and
//! off — to the same replies, meter counters, forensic residuals, and
//! audit-chain head, which is what makes the pipeline a safe default.

use std::borrow::Borrow;
use std::collections::HashMap;

use datacase_core::action::ActionKind;
use datacase_core::ids::EntityId;
use datacase_core::purpose::PurposeId;
use datacase_crypto::ctr::AesCtr;
use datacase_policy::enforcer::{PolicyEpoch, UnitClass, VersionedEnforcer};
use datacase_sim::fault::CrashPoint;
use datacase_sim::time::Ts;

use crate::db::CompliantDb;
use crate::error::EngineError;
use crate::frontend::{AuditRef, Request, Response, Session};
use crate::profiles::EngineConfig;

// ---------------------------------------------------------------------
// Plan stage
// ---------------------------------------------------------------------

/// How the plan stage sees a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestClass {
    /// A point read (`Read`, `ReadMeta`): its payload work (decryption)
    /// is deferred to the span's apply stage.
    ReadOnly,
    /// A scan-shaped read (`ReadByMeta`): read-only, executed serially
    /// within its span (it touches many units under one audit record).
    Scan,
    /// A workload mutation (`Create`, `Update`, `Delete`, `UpdateMeta`):
    /// executed serially in submission order within its span.
    Mutating,
    /// The compliance path (`Erase`, `Restore`): always a barrier — an
    /// erasure may redact already-written audit records, so every
    /// deferred record must be committed before it runs.
    Compliance,
}

/// Classify a request for the plan stage.
pub fn classify(request: &Request) -> RequestClass {
    match request {
        Request::Read { .. } | Request::ReadMeta { .. } => RequestClass::ReadOnly,
        Request::ReadByMeta { .. } => RequestClass::Scan,
        Request::Create { .. }
        | Request::Update { .. }
        | Request::Delete { .. }
        | Request::UpdateMeta { .. } => RequestClass::Mutating,
        Request::Erase { .. } | Request::Restore { .. } => RequestClass::Compliance,
    }
}

/// Does `request` require committing all deferred audit records before it
/// executes? True for anything that may redact the audit store: the
/// compliance verbs always (permanent erasure redacts the unit's log
/// records), and workload deletes on profiles that redact logs on every
/// erase (P_SYS).
fn flush_barrier(request: &Request, config: &EngineConfig) -> bool {
    match classify(request) {
        RequestClass::Compliance => true,
        RequestClass::Mutating => {
            matches!(request, Request::Delete { .. }) && config.delete_logs_on_erase
        }
        RequestClass::ReadOnly | RequestClass::Scan => false,
    }
}

/// One planned segment of a batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Segment {
    /// Requests `[start, end)` executed in one deferred span: reads queue
    /// decryption jobs, everything runs in submission order, and the
    /// span's audit records commit together at the next flush.
    Span(std::ops::Range<usize>),
    /// A request that must see a fully-committed audit store: the
    /// preceding span is flushed first.
    Barrier(usize),
}

/// Group a batch into spans and barriers.
pub(crate) fn plan<'r>(
    requests: impl Iterator<Item = &'r Request>,
    config: &EngineConfig,
) -> Vec<Segment> {
    let mut segments = Vec::new();
    let mut span_start: Option<usize> = None;
    let mut n = 0;
    let flush = |segments: &mut Vec<Segment>, start: Option<usize>, end: usize| {
        if let Some(start) = start {
            segments.push(Segment::Span(start..end));
        }
    };
    for (i, request) in requests.enumerate() {
        n = i + 1;
        if flush_barrier(request, config) {
            flush(&mut segments, span_start.take(), i);
            segments.push(Segment::Barrier(i));
        } else {
            span_start.get_or_insert(i);
        }
    }
    flush(&mut segments, span_start.take(), n);
    segments
}

// ---------------------------------------------------------------------
// Decide stage: the epoch-versioned decision cache
// ---------------------------------------------------------------------

/// A decision-cache key: the unit's equivalence class under the active
/// enforcement mechanism, plus the (actor entity, purpose, action) triple.
pub(crate) type CacheKey = (UnitClass, EntityId, PurposeId, ActionKind);

/// One cached, epoch-stamped policy decision.
#[derive(Clone, Debug)]
pub(crate) struct CachedDecision {
    /// Epoch the decision was computed at.
    pub epoch: PolicyEpoch,
    /// The decision holds through this instant (policy-window horizon).
    pub until: Ts,
    /// `None` = allow; `Some(reason)` = deny (denials are cached too —
    /// the re-logged DENIED audit record is cheap, the policy evaluation
    /// is not).
    pub deny_reason: Option<String>,
}

/// The versioned policy-decision cache: entries are validated by epoch
/// comparison against the [`VersionedEnforcer`], never expired by TTL and
/// never flushed wholesale. A policy mutation bumps the epoch for the
/// touched unit class, which strands exactly the entries it invalidated.
pub(crate) struct DecisionCache {
    capacity: usize,
    entries: HashMap<CacheKey, CachedDecision>,
}

impl DecisionCache {
    /// A cache holding at most `capacity` decisions (0 = disabled).
    pub fn new(capacity: usize) -> DecisionCache {
        DecisionCache {
            capacity,
            entries: HashMap::new(),
        }
    }

    /// Is caching enabled?
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Live entries (stale ones linger until evicted or overwritten).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// A still-valid cached decision for `key`, if any: the stamp must be
    /// current for the key's unit class and the clock must not have
    /// passed the decision's policy-window horizon.
    pub fn lookup(
        &self,
        key: &CacheKey,
        enforcer: &VersionedEnforcer,
        now: Ts,
    ) -> Option<&CachedDecision> {
        let cached = self.entries.get(key)?;
        (enforcer.is_current(key.0, cached.epoch) && now <= cached.until).then_some(cached)
    }

    /// Insert (or refresh) a decision. At capacity, stale entries are
    /// dropped first; if every entry is still valid the cache resets —
    /// a deterministic, bounded-memory relief valve that two runs of the
    /// same request stream hit identically.
    pub fn insert(
        &mut self,
        key: CacheKey,
        decision: CachedDecision,
        enforcer: &VersionedEnforcer,
        now: Ts,
    ) {
        if self.capacity == 0 {
            return;
        }
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            self.entries
                .retain(|k, v| enforcer.is_current(k.0, v.epoch) && now <= v.until);
            if self.entries.len() >= self.capacity {
                self.entries.clear();
            }
        }
        self.entries.insert(key, decision);
    }
}

// ---------------------------------------------------------------------
// Apply stage: deferred payload work
// ---------------------------------------------------------------------

/// Payload AES work deferred out of the serial pass — CTR is an
/// involution, so the same job shape covers both directions: decrypting
/// stored tuple bytes into a queued audit record's payload (the read
/// path), and encrypting queued payloads into their at-rest form for the
/// P_SYS encrypted log (the account path). All simulated costs were
/// charged when the job was created; running it is pure host CPU.
pub(crate) struct CipherJob {
    /// Index of the record this job's output belongs to, within the
    /// engine's deferred-record queue.
    pub slot: usize,
    /// Fan-out shard (unit id for tuple work, record seq for log work):
    /// jobs of one shard always land on the same worker, preserving
    /// per-shard order.
    pub shard: u64,
    /// The expanded cipher schedule, shared — never re-expanded per job.
    pub cipher: std::sync::Arc<AesCtr>,
    /// The payload's IV.
    pub iv: [u8; 16],
    /// Ciphertext in, plaintext out (or vice versa).
    pub data: Vec<u8>,
}

impl CipherJob {
    /// Perform the AES work in place (charges were paid at staging).
    pub(crate) fn run(&mut self) {
        self.cipher.apply(self.iv, &mut self.data);
    }
}

/// A staged point read: the typed outcome plus the audit record and
/// payload work still owed to the account/apply stages.
pub(crate) struct StagedRead {
    /// The request's outcome (complete — payload lengths are known
    /// without decrypting; AES-CTR preserves length).
    pub outcome: Result<crate::frontend::Reply, EngineError>,
    /// The audit record to route into the log, already charged and
    /// sequenced. Its payload is empty when `job` is set — the decrypted
    /// bytes fill it in before the record reaches the store.
    pub pending: Option<datacase_audit::record::LogRecord>,
    /// Deferred decryption feeding `pending`'s payload.
    pub job: Option<CipherJob>,
}

impl StagedRead {
    /// A read that failed before producing audit records or work.
    pub fn fail(error: EngineError) -> StagedRead {
        StagedRead {
            outcome: Err(error),
            pending: None,
            job: None,
        }
    }
}

/// Below this many unique jobs a span runs its AES inline: scoped-thread
/// spawn costs more than it saves. Byte volume has its own threshold
/// ([`crate::profiles::EngineConfig::pipeline_fanout_bytes`]) — job
/// *count* alone is a bad proxy since the crypto overhaul: 256
/// cached-key 100-byte decrypts are only ~25 KiB of AES, gone in ~100 µs
/// on the T-table path.
const MIN_FANOUT_JOBS: usize = 24;

/// A persistent pool of AES workers, spawned once per engine and fed one
/// batch of jobs per span flush. Replaces the per-span
/// `std::thread::scope` fan-out: with the T-table path a typical span's
/// AES is a few hundred microseconds of work, and re-spawning workers for
/// every span cost more than it saved.
///
/// The protocol is a plain fan-out/fan-in: distinct jobs are sharded to
/// the workers' queues, each worker runs its batch and sends it back, the
/// caller reassembles by index. Workers idle on `recv` between flushes
/// and exit when the engine (and with it the senders) drops.
pub(crate) struct CipherPool {
    txs: Vec<std::sync::mpsc::Sender<Vec<(usize, CipherJob)>>>,
    done_rx: std::sync::mpsc::Receiver<Vec<(usize, CipherJob)>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl CipherPool {
    /// Spawn `workers` (≥ 2) pool threads.
    pub(crate) fn new(workers: usize) -> CipherPool {
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = std::sync::mpsc::channel::<Vec<(usize, CipherJob)>>();
            let done = done_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(mut batch) = rx.recv() {
                    for (_, job) in batch.iter_mut() {
                        job.run();
                    }
                    if done.send(batch).is_err() {
                        break;
                    }
                }
            }));
            txs.push(tx);
        }
        CipherPool {
            txs,
            done_rx,
            handles,
        }
    }

    /// Pool width.
    pub(crate) fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Run the per-worker batches to completion, returning every
    /// (index, job) pair once its AES is done.
    fn dispatch(&self, batches: Vec<Vec<(usize, CipherJob)>>) -> Vec<(usize, CipherJob)> {
        let mut outstanding = 0usize;
        let mut total = 0usize;
        for (worker, batch) in batches.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            total += batch.len();
            self.txs[worker].send(batch).expect("cipher worker alive");
            outstanding += 1;
        }
        let mut done = Vec::with_capacity(total);
        for _ in 0..outstanding {
            done.extend(self.done_rx.recv().expect("cipher worker alive"));
        }
        done
    }
}

impl Drop for CipherPool {
    fn drop(&mut self) {
        self.txs.clear(); // workers see a closed channel and exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Run a span's cipher jobs.
///
/// Two batch-level optimizations sequential execution structurally cannot
/// make:
///
/// * **Coalescing** — zipfian read batches hit hot keys repeatedly, and
///   two jobs with the same (unit, IV, ciphertext) have the same
///   plaintext: each distinct job runs once and duplicates copy its
///   output. Simulated decrypt costs were charged per read in the serial
///   pass, exactly as sequential execution charges them — only host CPU
///   is deduplicated.
/// * **Fan-out** — spans carrying at least `min_fanout_bytes` of distinct
///   AES work spread it across the persistent [`CipherPool`], sharded by
///   `CipherJob::shard` so one worker owns all of a shard's work; smaller
///   spans run inline, where the T-table path finishes before the pool
///   round-trip would.
pub(crate) fn run_jobs(
    jobs: &mut Vec<CipherJob>,
    pool: Option<&CipherPool>,
    min_fanout_bytes: usize,
    dedup: bool,
) {
    // Dedup by (shard, iv, fingerprint-of-ciphertext) buckets without
    // cloning payloads: a bucket hit compares the actual bytes, so a
    // fingerprint collision can only cost a comparison, never a wrong
    // plaintext. Callers whose jobs are distinct by construction (log
    // encryption: one job per unique record seq) pass `dedup: false`
    // and skip the full-payload fingerprint pass entirely.
    let fingerprint = |data: &[u8]| -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in data {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    };
    let mut dups: Vec<(usize, usize)> = Vec::new();
    let mut is_dup = vec![false; jobs.len()];
    let mut distinct = jobs.len();
    let mut distinct_bytes: usize = jobs.iter().map(|j| j.data.len()).sum();
    if dedup {
        let mut buckets: HashMap<(u64, [u8; 16], u64), Vec<usize>> =
            HashMap::with_capacity(jobs.len());
        distinct = 0;
        distinct_bytes = 0;
        for i in 0..jobs.len() {
            let key = (jobs[i].shard, jobs[i].iv, fingerprint(&jobs[i].data));
            let bucket = buckets.entry(key).or_default();
            match bucket.iter().find(|&&r| jobs[r].data == jobs[i].data) {
                Some(&rep) => {
                    dups.push((i, rep));
                    is_dup[i] = true;
                }
                None => {
                    bucket.push(i);
                    distinct += 1;
                    distinct_bytes += jobs[i].data.len();
                }
            }
        }
    }
    let workers = pool.map(CipherPool::workers).unwrap_or(1);
    if workers <= 1 || distinct < MIN_FANOUT_JOBS || distinct_bytes < min_fanout_bytes {
        for (i, job) in jobs.iter_mut().enumerate() {
            if !is_dup[i] {
                job.run();
            }
        }
    } else {
        let pool = pool.expect("workers > 1 implies a pool");
        let mut slots: Vec<Option<CipherJob>> = jobs.drain(..).map(Some).collect();
        let mut batches: Vec<Vec<(usize, CipherJob)>> = Vec::new();
        batches.resize_with(workers, Vec::new);
        for (i, slot) in slots.iter_mut().enumerate() {
            if !is_dup[i] {
                let job = slot.take().expect("distinct job present");
                let worker = (job.shard % workers as u64) as usize;
                batches[worker].push((i, job));
            }
        }
        for (i, job) in pool.dispatch(batches) {
            slots[i] = Some(job);
        }
        jobs.extend(slots.into_iter().map(|s| s.expect("all jobs returned")));
    }
    for (dup, rep) in dups {
        jobs[dup].data = jobs[rep].data.clone();
    }
}

/// Apply + account: run the accumulated decrypt jobs (fanned out), patch
/// their plaintexts into the deferred audit records, and commit the queue
/// to the log store in sequence order. On encrypted-log profiles (P_SYS)
/// the commit itself fans the records' payload AES out over the same
/// workers first — see [`CompliantDb::commit_deferred`] — so the last
/// serial AES of the account pass is gone.
fn flush_span(db: &mut CompliantDb, jobs: &mut Vec<CipherJob>) {
    db.config().fault.hit(CrashPoint::Apply);
    run_jobs(jobs, db.pool(), db.fanout_bytes(), true);
    for job in jobs.drain(..) {
        db.fill_deferred(job.slot, job.data);
    }
    db.config().fault.hit(CrashPoint::Account);
    db.commit_deferred();
    flush_sector_crypto(db);
}

/// Drain the backend's deferred sector encryption (pages that crossed
/// the buffer-pool/disk boundary during the span on a sector-encrypted
/// substrate — P_GBench's LUKS shim) onto the same cipher workers. The
/// sectors' simulated charges landed at write time; this is the pure
/// host AES, the last serial crypto of the P_GBench hot path.
///
/// Runs as its own `run_jobs` call with `dedup: false`: sector jobs are
/// distinct by construction (one per sector), and the dedup bucket key
/// does not include which cipher a job carries, so they must never share
/// a dedup pass with tuple jobs.
fn flush_sector_crypto(db: &mut CompliantDb) {
    let pending = db.backend_mut().take_pending_sector_crypto();
    if pending.is_empty() {
        return;
    }
    let mut jobs: Vec<CipherJob> = pending
        .into_iter()
        .map(|p| CipherJob {
            slot: p.sector as usize,
            shard: p.sector as u64,
            cipher: p.cipher,
            iv: p.iv,
            data: p.data,
        })
        .collect();
    run_jobs(&mut jobs, db.pool(), db.fanout_bytes(), false);
    for job in jobs {
        db.backend_mut()
            .store_sector_ciphertext(job.slot as u32, job.data);
    }
}

// ---------------------------------------------------------------------
// The pipeline driver
// ---------------------------------------------------------------------

/// Execute a batch under `session`, returning one [`Response`] per
/// request in submission order. Routes through the staged pipeline when
/// [`EngineConfig::pipeline`] is set, and through the plain sequential
/// loop otherwise; both paths share every cost-charging code line, so
/// their observable behaviour is identical.
pub(crate) fn execute<T: Borrow<Request>>(
    db: &mut CompliantDb,
    session: &Session,
    requests: &[T],
) -> Vec<Response> {
    db.config().fault.hit(CrashPoint::Plan);
    let mut responses = Vec::with_capacity(requests.len());
    if !db.config().pipeline {
        for (i, request) in requests.iter().enumerate() {
            responses.push(run_one(db, session, request.borrow(), i, None));
        }
        return responses;
    }
    let segments = plan(requests.iter().map(Borrow::borrow), db.config());
    let mut jobs: Vec<CipherJob> = Vec::new();
    db.set_deferred(true);
    for segment in segments {
        match segment {
            Segment::Span(range) => {
                for i in range {
                    responses.push(run_one(
                        db,
                        session,
                        requests[i].borrow(),
                        i,
                        Some(&mut jobs),
                    ));
                }
            }
            Segment::Barrier(i) => {
                // The barrier may redact the audit store: commit every
                // deferred record first, exactly as sequential execution
                // would have by this point.
                flush_span(db, &mut jobs);
                responses.push(run_one(db, session, requests[i].borrow(), i, None));
            }
        }
    }
    flush_span(db, &mut jobs);
    db.set_deferred(false);
    responses
}

/// Execute a queued burst of submissions — possibly from different
/// sessions — through **one** staged pipeline, overlapping plan/decide/
/// apply across submission boundaries: a read wave at the tail of one
/// submission and the head of the next flush as a single span, so queue
/// bursts amortize fan-out cost that per-call execution cannot.
///
/// The contract is the same as [`execute`]'s, extended across the burst:
/// the account pass stays serial in global submission order, records are
/// charged and sequenced exactly when sequential execution would have
/// charged them, and each [`Response`] carries its index *within its own
/// submission* — so replies, meter counters, forensic residuals and the
/// audit chain's bytes are all indistinguishable from executing the
/// submissions one at a time (the multi-session parity gate holds a
/// concurrent engine to precisely this).
///
/// Before each submission's first decide the engine-wide [`EpochBus`] is
/// observed, so a revoke published by any shard strands stale cached
/// global allows here no later than the submission boundary.
///
/// [`EpochBus`]: datacase_policy::enforcer::EpochBus
pub(crate) fn execute_many(
    db: &mut CompliantDb,
    submissions: &[(Session, Vec<Request>)],
) -> Vec<Vec<Response>> {
    if !db.config().pipeline {
        return submissions
            .iter()
            .map(|(session, requests)| {
                db.sync_epoch_bus();
                execute(db, session, requests)
            })
            .collect();
    }
    db.config().fault.hit(CrashPoint::Plan);
    // Flatten the burst while remembering each request's origin: plan()
    // sees one stream (spans may straddle submission boundaries), but
    // sessions and reply indices stay per-submission.
    let mut origin: Vec<(usize, usize)> = Vec::new();
    let mut flat: Vec<&Request> = Vec::new();
    for (s, (_, requests)) in submissions.iter().enumerate() {
        for (i, request) in requests.iter().enumerate() {
            origin.push((s, i));
            flat.push(request);
        }
    }
    let segments = plan(flat.iter().copied(), db.config());
    let mut out: Vec<Vec<Response>> = submissions
        .iter()
        .map(|(_, requests)| Vec::with_capacity(requests.len()))
        .collect();
    let mut jobs: Vec<CipherJob> = Vec::new();
    let mut current = usize::MAX;
    let mut sync_boundary = |db: &mut CompliantDb, s: usize| {
        if s != current {
            current = s;
            db.sync_epoch_bus();
        }
    };
    db.set_deferred(true);
    for segment in segments {
        match segment {
            Segment::Span(range) => {
                for g in range {
                    let (s, i) = origin[g];
                    sync_boundary(db, s);
                    let response = run_one(db, &submissions[s].0, flat[g], i, Some(&mut jobs));
                    out[s].push(response);
                }
            }
            Segment::Barrier(g) => {
                // The barrier may redact the audit store: commit every
                // deferred record first, exactly as per-call execution
                // would have by this point.
                flush_span(db, &mut jobs);
                let (s, i) = origin[g];
                sync_boundary(db, s);
                out[s].push(run_one(db, &submissions[s].0, flat[g], i, None));
            }
        }
    }
    flush_span(db, &mut jobs);
    db.set_deferred(false);
    out
}

/// Admission control: a session past its deadline is denied without
/// touching enforcement — checked per request, so a deadline crossing
/// mid-batch behaves exactly like it would across single-request
/// submissions.
fn admitted(db: &CompliantDb, session: &Session) -> bool {
    session
        .deadline()
        .map(|d| db.clock().now() <= d)
        .unwrap_or(true)
}

/// Key-scope admission: a scoped session may only address keys inside
/// its block. Like the deadline gate, denial happens before enforcement
/// and writes no audit records — the request never names a record the
/// session could legitimately see. Scans carry no key and are admitted;
/// their candidate set is filtered to the scope inside the engine.
fn in_scope(session: &Session, request: &Request) -> bool {
    match (session.scope(), request.key()) {
        (Some(scope), Some(key)) => scope.contains(key),
        _ => true,
    }
}

/// Execute one request in submission order. With `jobs` present (a
/// pipelined span), point reads defer their decryption into the job
/// queue; everything else runs to completion here either way.
fn run_one(
    db: &mut CompliantDb,
    session: &Session,
    request: &Request,
    index: usize,
    jobs: Option<&mut Vec<CipherJob>>,
) -> Response {
    db.config().fault.hit(CrashPoint::Decide);
    let seq_before = db.log_seq();
    let outcome = if !in_scope(session, request) {
        Err(EngineError::Denied {
            reason: "key outside session scope".into(),
        })
    } else if admitted(db, session) {
        match (jobs, classify(request)) {
            (Some(jobs), RequestClass::ReadOnly) => {
                db.tick_cadence();
                let (outcome, job) = match request {
                    Request::Read { key } => {
                        db.read_deferred(*key, session.actor(), session.purpose())
                    }
                    Request::ReadMeta { key } => {
                        db.read_meta_deferred(*key, session.actor(), session.purpose())
                    }
                    _ => unreachable!("ReadOnly covers exactly Read and ReadMeta"),
                };
                jobs.extend(job);
                outcome
            }
            _ => db.apply(request, session.actor(), session.purpose(), session.scope()),
        }
    } else {
        Err(EngineError::Denied {
            reason: "session deadline passed".into(),
        })
    };
    let seq_after = db.log_seq();
    Response {
        index,
        outcome,
        audit: AuditRef {
            start: seq_before + 1,
            records: seq_after - seq_before,
            at: db.clock().now(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::ProfileKind;

    fn read(key: u64) -> Request {
        Request::Read { key }
    }

    #[test]
    fn classify_covers_the_vocabulary() {
        use datacase_core::grounding::erasure::ErasureInterpretation;
        assert_eq!(classify(&read(1)), RequestClass::ReadOnly);
        assert_eq!(
            classify(&Request::ReadMeta { key: 1 }),
            RequestClass::ReadOnly
        );
        assert_eq!(
            classify(&Request::ReadByMeta {
                selector: datacase_workloads::opstream::MetaSelector::BySubject(1),
            }),
            RequestClass::Scan
        );
        assert_eq!(
            classify(&Request::Delete { key: 1 }),
            RequestClass::Mutating
        );
        assert_eq!(
            classify(&Request::Erase {
                key: 1,
                interpretation: ErasureInterpretation::Deleted,
            }),
            RequestClass::Compliance
        );
    }

    #[test]
    fn plan_spans_benign_mutations_and_breaks_at_compliance_verbs() {
        use datacase_core::grounding::erasure::ErasureInterpretation;
        let config = EngineConfig::p_base(); // no log redaction on delete
        let reqs = [
            read(1),
            Request::Delete { key: 9 },
            read(2),
            Request::Erase {
                key: 3,
                interpretation: ErasureInterpretation::Deleted,
            },
            read(4),
            read(5),
        ];
        let segments = plan(reqs.iter(), &config);
        assert_eq!(
            segments,
            vec![
                Segment::Span(0..3), // delete without log redaction stays in-span
                Segment::Barrier(3), // erasure may redact the audit store
                Segment::Span(4..6),
            ]
        );
    }

    #[test]
    fn plan_breaks_at_deletes_on_log_redacting_profiles() {
        let config = EngineConfig::for_profile(ProfileKind::PSys);
        assert!(config.delete_logs_on_erase);
        let reqs = [read(1), Request::Delete { key: 9 }, read(2)];
        let segments = plan(reqs.iter(), &config);
        assert_eq!(
            segments,
            vec![
                Segment::Span(0..1),
                Segment::Barrier(1),
                Segment::Span(2..3),
            ]
        );
    }
}
