//! The retention sweeper: automated G17 maintenance.
//!
//! The paper's challenge section asks for "a comprehensive tool that can
//! be retrofitted on any non-compliant system to make it compliant"; the
//! sweeper is that tool's first component for erasure. It scans the model
//! for units whose `compliance-erase` deadline has passed (or is about to)
//! and executes the configured erasure grounding on them — turning G17
//! from a checked invariant into a maintained one. It operates on a
//! [`Frontend`] like every other engine client; the erasure plans run
//! through the same executor the frontend's `Erase` requests use.

use datacase_core::grounding::erasure::ErasureInterpretation;
use datacase_core::ids::UnitId;
use datacase_core::purpose::well_known as wk;
use datacase_sim::time::{Dur, Ts};

use crate::erasure::erase_now;
use crate::frontend::Frontend;

/// Sweeper configuration.
#[derive(Clone, Copy, Debug)]
pub struct SweeperConfig {
    /// The erasure grounding applied to expired units.
    pub interpretation: ErasureInterpretation,
    /// Erase this long *before* the deadline (safety margin; a sweep that
    /// runs exactly at the deadline is already late by the paper's
    /// "without undue delay").
    pub lead: Dur,
}

impl Default for SweeperConfig {
    fn default() -> Self {
        SweeperConfig {
            interpretation: ErasureInterpretation::Deleted,
            lead: Dur::from_secs(3600),
        }
    }
}

/// Result of one sweep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Units whose retention deadline was due and that were erased now.
    pub erased: Vec<UnitId>,
    /// Units already erased (nothing to do).
    pub already_erased: usize,
    /// Due units the sweeper could not erase (no key binding).
    pub failed: Vec<UnitId>,
}

impl SweepReport {
    /// Did the sweep leave any due unit unerased?
    pub fn fully_swept(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Find every personal unit whose earliest `compliance-erase` deadline is
/// within `config.lead` of `now` (or past), and erase the live ones.
pub fn sweep(frontend: &mut Frontend, config: SweeperConfig) -> SweepReport {
    let db = frontend.db_mut();
    let now = db.clock().now();
    let horizon = now + config.lead;
    // Collect due units first (the erase mutates state).
    let mut due: Vec<(UnitId, bool)> = Vec::new();
    for id in db.state().unit_ids_sorted() {
        let unit = db.state().unit(id).expect("listed");
        if !unit.is_personal() {
            continue;
        }
        let deadline = unit
            .policies
            .records()
            .iter()
            .filter(|r| r.policy.purpose == wk::compliance_erase())
            .map(|r| r.policy.until)
            .min();
        let Some(deadline) = deadline else { continue };
        if deadline <= horizon {
            due.push((id, unit.erasure.is_erased()));
        }
    }
    let mut report = SweepReport::default();
    // Retention erasure is the controller's duty; sweeps are attributed
    // to it in the action history.
    let controller = db.controller();
    for (unit, already) in due {
        if already {
            report.already_erased += 1;
            continue;
        }
        match db.key_of_unit(unit) {
            Some(key) if erase_now(db, key, config.interpretation, controller) => {
                report.erased.push(unit);
            }
            _ => report.failed.push(unit),
        }
    }
    report
}

/// The next instant a sweep will have work to do: the earliest erase
/// deadline among live personal units, minus the lead. `None` if nothing
/// is scheduled for erasure.
pub fn next_due(frontend: &Frontend, config: SweeperConfig) -> Option<Ts> {
    let db = frontend.db();
    let mut earliest: Option<Ts> = None;
    for id in db.state().unit_ids_sorted() {
        let unit = db.state().unit(id).expect("listed");
        if !unit.is_personal() || unit.erasure.is_erased() {
            continue;
        }
        let deadline = unit
            .policies
            .records()
            .iter()
            .filter(|r| r.policy.purpose == wk::compliance_erase())
            .map(|r| r.policy.until)
            .min();
        if let Some(d) = deadline {
            earliest = Some(match earliest {
                Some(e) => e.min(d),
                None => d,
            });
        }
    }
    earliest.map(|d| Ts(d.0.saturating_sub(config.lead.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Actor;
    use crate::frontend::{Request, Session};
    use crate::profiles::EngineConfig;
    use datacase_core::regulation::Regulation;
    use datacase_workloads::record::GdprMetadata;

    fn fe_with_ttls(ttls: &[u64]) -> Frontend {
        let mut fe = Frontend::new(EngineConfig::p_base());
        let controller = Session::new(Actor::Controller);
        for (i, &ttl) in ttls.iter().enumerate() {
            let metadata = GdprMetadata {
                subject: i as u32,
                purpose: wk::billing(),
                ttl: Ts::from_secs(ttl),
                origin_device: 0,
                objects_to_sharing: false,
            };
            fe.run(
                &controller,
                Request::Create {
                    key: i as u64,
                    payload: format!("record-{i}").into_bytes(),
                    metadata,
                },
            );
        }
        fe
    }

    #[test]
    fn sweep_erases_only_due_units() {
        let mut fe = fe_with_ttls(&[100, 10_000_000]);
        fe.clock().advance_to(Ts::from_secs(200));
        let report = sweep(&mut fe, SweeperConfig::default());
        assert_eq!(report.erased.len(), 1);
        assert!(report.fully_swept());
        let early = fe.unit_of_key(0).unwrap();
        let late = fe.unit_of_key(1).unwrap();
        assert!(fe.state().unit(early).unwrap().erasure.is_erased());
        assert!(!fe.state().unit(late).unwrap().erasure.is_erased());
    }

    #[test]
    fn swept_db_stays_g17_compliant_past_deadlines() {
        let mut fe = fe_with_ttls(&[100, 200, 300]);
        // Without sweeping, letting deadlines pass breaks G17…
        fe.clock().advance_to(Ts::from_secs(40 * 24 * 3600));
        let before = fe.compliance_report(&Regulation::gdpr());
        assert!(!before.is_compliant());
        // …but a sweep (even this late) restores the erased-status side.
        let report = sweep(&mut fe, SweeperConfig::default());
        assert_eq!(report.erased.len(), 3);
        let after = fe.compliance_report(&Regulation::gdpr());
        assert!(after
            .of_invariant("G17")
            .iter()
            .all(|v| !v.message.contains("regulation requires")));
    }

    #[test]
    fn proactive_sweeps_never_let_g17_break() {
        let mut fe = fe_with_ttls(&[3600, 7200, 10_800]);
        let config = SweeperConfig {
            lead: Dur::from_secs(600),
            ..SweeperConfig::default()
        };
        // Sweep at each next-due instant before the deadline passes.
        for _ in 0..3 {
            let Some(due) = next_due(&fe, config) else {
                break;
            };
            fe.clock().advance_to(due);
            sweep(&mut fe, config);
            let report = fe.compliance_report(&Regulation::gdpr());
            assert!(
                report.of_invariant("G17").is_empty(),
                "G17 must hold continuously: {:?}",
                report.of_invariant("G17")
            );
        }
        assert_eq!(next_due(&fe, config), None, "everything erased");
    }

    #[test]
    fn second_sweep_is_idempotent() {
        let mut fe = fe_with_ttls(&[100]);
        fe.clock().advance_to(Ts::from_secs(5000));
        let first = sweep(&mut fe, SweeperConfig::default());
        assert_eq!(first.erased.len(), 1);
        let second = sweep(&mut fe, SweeperConfig::default());
        assert!(second.erased.is_empty());
        assert_eq!(second.already_erased, 1);
    }

    #[test]
    fn sweep_erases_due_units_on_lsm_backend() {
        use datacase_storage::backend::BackendKind;
        let mut fe = Frontend::new(EngineConfig::p_base().with_backend(BackendKind::Lsm));
        let controller = Session::new(Actor::Controller);
        let metadata = GdprMetadata {
            subject: 1,
            purpose: wk::billing(),
            ttl: Ts::from_secs(100),
            origin_device: 0,
            objects_to_sharing: false,
        };
        fe.run(
            &controller,
            Request::Create {
                key: 0,
                payload: b"lsm-swept-record".to_vec(),
                metadata,
            },
        );
        fe.clock().advance_to(Ts::from_secs(5000));
        let report = sweep(&mut fe, SweeperConfig::default());
        assert_eq!(report.erased.len(), 1);
        assert!(report.fully_swept());
        let unit = fe.unit_of_key(0).unwrap();
        assert!(fe.state().unit(unit).unwrap().erasure.is_erased());
        let read_back = fe.run(&controller, Request::Read { key: 0 });
        assert!(
            read_back.outcome.is_err(),
            "erased record must be unreadable: {:?}",
            read_back.outcome
        );
    }

    #[test]
    fn sweeper_respects_configured_interpretation() {
        let mut fe = fe_with_ttls(&[100]);
        fe.clock().advance_to(Ts::from_secs(5000));
        let config = SweeperConfig {
            interpretation: ErasureInterpretation::StronglyDeleted,
            ..SweeperConfig::default()
        };
        sweep(&mut fe, config);
        let unit = fe.unit_of_key(0).unwrap();
        assert!(fe
            .state()
            .unit(unit)
            .unwrap()
            .erasure
            .satisfies(ErasureInterpretation::StronglyDeleted));
    }
}
