#![deny(missing_docs)]
//! The engine frontend's error taxonomy.
//!
//! The legacy `OpResult` folded every non-success outcome into sentinel
//! enum values (`Denied`, `NotFound`), so callers could not tell a policy
//! denial from a missing key from an erased record from a substrate
//! failure. [`EngineError`] separates the four:
//!
//! | variant | meaning | typical cause |
//! |---|---|---|
//! | [`EngineError::Denied`] | policy enforcement refused the request | no active policy, revoked consent, session deadline |
//! | [`EngineError::NotFound`] | the key was never stored | stream targets an unknown key |
//! | [`EngineError::RetentionExpired`] | the key's unit was erased | post-erasure access, lapsed retention |
//! | [`EngineError::Backend`] | the storage substrate failed | duplicate key, page overflow, WAL corruption |

use datacase_sim::time::Ts;

/// Why a [`Request`](crate::frontend::Request) produced no
/// [`Reply`](crate::frontend::Reply).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// Policy enforcement denied the request before it touched storage.
    Denied {
        /// The enforcer's (or session gate's) stated reason.
        reason: String,
    },
    /// The key was never stored under this engine.
    NotFound {
        /// The requested key.
        key: u64,
    },
    /// The key once existed but its unit has been erased (or its
    /// retention deadline executed): the record is gone *by design*, not
    /// by accident — post-erasure accesses land here rather than in
    /// [`EngineError::NotFound`].
    RetentionExpired {
        /// The requested key.
        key: u64,
        /// When the unit left the live state.
        since: Ts,
    },
    /// The storage substrate rejected or failed the physical operation.
    Backend {
        /// The substrate's error rendering.
        detail: String,
    },
}

impl EngineError {
    /// Was the request refused by policy enforcement?
    pub fn is_denied(&self) -> bool {
        matches!(self, EngineError::Denied { .. })
    }

    /// Did the request target a key that never existed?
    pub fn is_not_found(&self) -> bool {
        matches!(self, EngineError::NotFound { .. })
    }

    /// Did the request target an erased (retention-executed) record?
    pub fn is_retention_expired(&self) -> bool {
        matches!(self, EngineError::RetentionExpired { .. })
    }

    /// Did the storage substrate fail?
    pub fn is_backend(&self) -> bool {
        matches!(self, EngineError::Backend { .. })
    }

    /// Short stable label for statistics and tables.
    pub fn label(&self) -> &'static str {
        match self {
            EngineError::Denied { .. } => "denied",
            EngineError::NotFound { .. } => "not-found",
            EngineError::RetentionExpired { .. } => "retention-expired",
            EngineError::Backend { .. } => "backend",
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Denied { reason } => write!(f, "denied by policy: {reason}"),
            EngineError::NotFound { key } => write!(f, "key {key} not found"),
            EngineError::RetentionExpired { key, since } => {
                write!(f, "key {key} erased (retention executed at {since})")
            }
            EngineError::Backend { detail } => write!(f, "storage backend failure: {detail}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_match_variants() {
        assert!(EngineError::Denied { reason: "x".into() }.is_denied());
        assert!(EngineError::NotFound { key: 1 }.is_not_found());
        assert!(EngineError::RetentionExpired {
            key: 1,
            since: Ts::ZERO
        }
        .is_retention_expired());
        assert!(EngineError::Backend { detail: "d".into() }.is_backend());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EngineError::NotFound { key: 9 }.label(), "not-found");
        assert_eq!(
            format!("{}", EngineError::NotFound { key: 9 }),
            "key 9 not found"
        );
    }
}
