//! Free-space map: tracks approximate free bytes per heap page so inserts
//! find a home without scanning the whole table.

/// Approximate per-page free space, PostgreSQL-FSM-style (coarse buckets).
#[derive(Clone, Debug, Default)]
pub struct FreeSpaceMap {
    free: Vec<u16>,
}

impl FreeSpaceMap {
    /// An empty map.
    pub fn new() -> FreeSpaceMap {
        FreeSpaceMap::default()
    }

    /// Register a newly allocated page with its free byte count.
    pub fn add_page(&mut self, free: usize) -> u32 {
        let id = self.free.len() as u32;
        self.free.push(free as u16);
        id
    }

    /// Update a page's free space.
    pub fn set(&mut self, page: u32, free: usize) {
        if let Some(slot) = self.free.get_mut(page as usize) {
            *slot = free as u16;
        }
    }

    /// Find a page with at least `need` free bytes, preferring earlier
    /// pages (keeps the table dense after vacuum).
    pub fn find(&self, need: usize) -> Option<u32> {
        self.free
            .iter()
            .position(|&f| f as usize >= need)
            .map(|p| p as u32)
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// True if no page is tracked.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Truncate to `n` pages (VACUUM FULL shrinks the file).
    pub fn truncate(&mut self, n: usize) {
        self.free.truncate(n);
    }

    /// Total free bytes across all pages (bloat statistics).
    pub fn total_free(&self) -> u64 {
        self.free.iter().map(|&f| f as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_find() {
        let mut f = FreeSpaceMap::new();
        let a = f.add_page(100);
        let b = f.add_page(5000);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(f.find(200), Some(1));
        assert_eq!(f.find(50), Some(0), "prefers earliest page that fits");
        assert_eq!(f.find(9000), None);
    }

    #[test]
    fn set_updates() {
        let mut f = FreeSpaceMap::new();
        f.add_page(1000);
        f.set(0, 10);
        assert_eq!(f.find(100), None);
        assert_eq!(f.total_free(), 10);
    }

    #[test]
    fn truncate_forgets_tail() {
        let mut f = FreeSpaceMap::new();
        f.add_page(10);
        f.add_page(8000);
        f.truncate(1);
        assert_eq!(f.len(), 1);
        assert_eq!(f.find(1000), None);
    }
}
