//! The forensic residual scanner: the independent observer that checks
//! whether "erased" personal data physically persists anywhere.
//!
//! This is what turns Table 1 from a claimed matrix into a *measured* one:
//! after each erasure grounding executes, the scanner inspects
//!
//! * heap pages as they are on disk (dead tuples, unvacuumed versions),
//! * the WAL (payloads of old records),
//! * drive remanence (overwritten sectors not yet sanitised),
//! * LSM runs (shadowed versions under tombstones).

use crate::heap::HeapDb;
use crate::lsm::LsmTree;

/// Where residuals of a needle were found.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ForensicFindings {
    /// Heap/file pages whose current bytes contain the needle.
    pub file_pages: Vec<u32>,
    /// WAL records whose payload contains the needle.
    pub wal_lsns: Vec<u64>,
    /// Sectors whose drive-remanence layer contains the needle.
    pub remanent_pages: Vec<u32>,
    /// LSM entries (across runs + memtable) containing the needle.
    pub lsm_entries: usize,
}

impl ForensicFindings {
    /// Residuals reachable through *online* storage (file pages, WAL, LSM
    /// runs) — what an attacker with filesystem access gets. This is the
    /// evidence relevant to the illegal-inference (II) probe.
    pub fn online(&self) -> bool {
        !self.file_pages.is_empty() || !self.wal_lsns.is_empty() || self.lsm_entries > 0
    }

    /// Residuals at any layer, including drive remanence — what a
    /// forensics lab gets. Permanent deletion must clear this too.
    pub fn any(&self) -> bool {
        self.online() || !self.remanent_pages.is_empty()
    }

    /// Total residual hits across every layer — the per-backend count
    /// erasure evidence reports lead with.
    pub fn total(&self) -> usize {
        self.file_pages.len() + self.wal_lsns.len() + self.remanent_pages.len() + self.lsm_entries
    }

    /// One-line description for probe notes.
    pub fn describe(&self) -> String {
        format!(
            "file_pages={} wal_records={} remanent_sectors={} lsm_entries={}",
            self.file_pages.len(),
            self.wal_lsns.len(),
            self.remanent_pages.len(),
            self.lsm_entries
        )
    }
}

/// Scan a heap database for residuals of `needle`.
///
/// The caller should `checkpoint()` first so buffered state has reached
/// the disk; the scanner reads only the persistent layers.
pub fn scan_heap(db: &HeapDb, needle: &[u8]) -> ForensicFindings {
    ForensicFindings {
        file_pages: db.disk().scan_raw(needle),
        wal_lsns: db.wal().scan(needle),
        remanent_pages: db.disk().scan_remanent(needle),
        lsm_entries: 0,
    }
}

/// Scan an LSM tree for residuals of `needle`.
pub fn scan_lsm(tree: &LsmTree, needle: &[u8]) -> ForensicFindings {
    ForensicFindings {
        lsm_entries: tree.scan_physical(needle),
        ..ForensicFindings::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delete_only_leaves_online_residuals() {
        let mut db = HeapDb::default_single();
        db.insert(1, 1, b"forensic-target").unwrap();
        db.delete(1).unwrap();
        db.checkpoint();
        let f = scan_heap(&db, b"forensic-target");
        assert!(f.online(), "{}", f.describe());
        assert!(!f.file_pages.is_empty());
        assert!(!f.wal_lsns.is_empty());
    }

    #[test]
    fn vacuum_clears_pages_not_wal() {
        let mut db = HeapDb::default_single();
        db.insert(1, 1, b"forensic-target").unwrap();
        db.delete(1).unwrap();
        db.vacuum();
        db.checkpoint();
        let f = scan_heap(&db, b"forensic-target");
        assert!(f.file_pages.is_empty(), "{}", f.describe());
        assert!(!f.wal_lsns.is_empty(), "WAL still retains it");
        assert!(f.online());
    }

    #[test]
    fn full_stack_erasure_clears_everything() {
        let mut db = HeapDb::default_single();
        db.insert(1, 77, b"forensic-target").unwrap();
        db.delete(1).unwrap();
        db.vacuum_full();
        db.scrub_wal_unit(77);
        db.sanitize_drive(3);
        db.checkpoint();
        let f = scan_heap(&db, b"forensic-target");
        assert!(!f.any(), "{}", f.describe());
    }

    #[test]
    fn lsm_residuals_until_compaction() {
        let mut t = LsmTree::default_single();
        t.put(1, 1, b"lsm-target");
        t.flush();
        t.delete(1, 1);
        let f = scan_lsm(&t, b"lsm-target");
        assert!(f.online());
        t.compact_all();
        let f2 = scan_lsm(&t, b"lsm-target");
        assert!(!f2.any(), "{}", f2.describe());
    }

    #[test]
    fn describe_is_informative() {
        let f = ForensicFindings {
            file_pages: vec![1, 2],
            wal_lsns: vec![9],
            remanent_pages: vec![],
            lsm_entries: 0,
        };
        let d = f.describe();
        assert!(d.contains("file_pages=2"));
        assert!(d.contains("wal_records=1"));
    }
}
