//! Slotted heap pages, PostgreSQL-style.
//!
//! Layout of an 8 KiB page:
//!
//! ```text
//! +-------------------+ 0
//! | header (8 bytes)  |  slot_count | free_lower | free_upper | flags
//! +-------------------+ 8
//! | line pointers     |  6 bytes each: offset | len | state
//! |        ↓          |
//! +-------------------+ free_lower
//! |   free space      |
//! +-------------------+ free_upper
//! |        ↑          |
//! | tuple data        |
//! +-------------------+ PAGE_SIZE
//! ```
//!
//! Deleting a tuple only flips its line-pointer state to DEAD — the bytes
//! stay where they are until VACUUM. That gap between logical and physical
//! deletion is precisely the compliance hazard the paper discusses, and the
//! forensic scanner reads these raw bytes to detect it.

/// Page size in bytes (PostgreSQL default).
pub const PAGE_SIZE: usize = 8192;
/// Page header size.
pub const HEADER_SIZE: usize = 8;
/// Line pointer size.
pub const LP_SIZE: usize = 6;
/// Largest tuple payload a page can hold (one tuple, one line pointer).
pub const MAX_TUPLE: usize = PAGE_SIZE - HEADER_SIZE - LP_SIZE;

/// Line-pointer state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotState {
    /// Never used or reclaimed by vacuum; may be reused.
    Unused,
    /// Holds a live (possibly MVCC-dead but unreclaimed) tuple.
    Normal,
    /// Tuple is dead and awaiting vacuum; bytes still present.
    Dead,
}

impl SlotState {
    fn to_u16(self) -> u16 {
        match self {
            SlotState::Unused => 0,
            SlotState::Normal => 1,
            SlotState::Dead => 2,
        }
    }

    fn from_u16(v: u16) -> SlotState {
        match v {
            1 => SlotState::Normal,
            2 => SlotState::Dead,
            _ => SlotState::Unused,
        }
    }
}

/// An 8 KiB slotted page.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    bytes: Vec<u8>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

impl Page {
    /// A fresh, empty page.
    pub fn new() -> Page {
        let mut bytes = vec![0u8; PAGE_SIZE];
        write_u16(&mut bytes, 0, 0); // slot_count
        write_u16(&mut bytes, 2, HEADER_SIZE as u16); // free_lower
        write_u16(&mut bytes, 4, PAGE_SIZE as u16); // free_upper
        Page { bytes }
    }

    /// Rehydrate a page from raw bytes (disk read). An all-zero page (as
    /// freshly allocated or zeroed by VACUUM FULL) is initialised to a
    /// valid empty page, as PostgreSQL does on first touch.
    ///
    /// # Panics
    /// Panics if `bytes` is not exactly [`PAGE_SIZE`] long.
    pub fn from_bytes(bytes: Vec<u8>) -> Page {
        assert_eq!(bytes.len(), PAGE_SIZE, "page must be {PAGE_SIZE} bytes");
        let mut page = Page { bytes };
        if page.slot_count() == 0 && page.free_upper() == 0 {
            write_u16(&mut page.bytes, 2, HEADER_SIZE as u16);
            write_u16(&mut page.bytes, 4, PAGE_SIZE as u16);
        }
        page
    }

    /// The raw on-page bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of line pointers ever allocated on this page.
    pub fn slot_count(&self) -> u16 {
        read_u16(&self.bytes, 0)
    }

    fn free_lower(&self) -> u16 {
        read_u16(&self.bytes, 2)
    }

    fn free_upper(&self) -> u16 {
        read_u16(&self.bytes, 4)
    }

    /// Contiguous free bytes between the line-pointer array and tuple data.
    pub fn free_space(&self) -> usize {
        (self.free_upper() - self.free_lower()) as usize
    }

    /// Free space available to a new tuple (accounts for a possibly-new
    /// line pointer).
    pub fn usable_space(&self) -> usize {
        self.free_space().saturating_sub(LP_SIZE)
    }

    fn lp_offset(slot: u16) -> usize {
        HEADER_SIZE + slot as usize * LP_SIZE
    }

    /// The state of `slot`.
    pub fn slot_state(&self, slot: u16) -> SlotState {
        debug_assert!(slot < self.slot_count());
        SlotState::from_u16(read_u16(&self.bytes, Self::lp_offset(slot) + 4))
    }

    fn set_slot(&mut self, slot: u16, offset: u16, len: u16, state: SlotState) {
        let at = Self::lp_offset(slot);
        write_u16(&mut self.bytes, at, offset);
        write_u16(&mut self.bytes, at + 2, len);
        write_u16(&mut self.bytes, at + 4, state.to_u16());
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16, SlotState) {
        let at = Self::lp_offset(slot);
        (
            read_u16(&self.bytes, at),
            read_u16(&self.bytes, at + 2),
            SlotState::from_u16(read_u16(&self.bytes, at + 4)),
        )
    }

    /// Insert tuple bytes, reusing an UNUSED slot if available.
    /// Returns the slot, or `None` if the page lacks space.
    pub fn insert(&mut self, tuple: &[u8]) -> Option<u16> {
        let len = tuple.len();
        if len > MAX_TUPLE {
            return None;
        }
        // Find a reusable slot first (vacuumed slots).
        let mut reuse: Option<u16> = None;
        for s in 0..self.slot_count() {
            if self.slot_state(s) == SlotState::Unused {
                reuse = Some(s);
                break;
            }
        }
        let need = len + if reuse.is_some() { 0 } else { LP_SIZE };
        if self.free_space() < need {
            return None;
        }
        let new_upper = self.free_upper() as usize - len;
        self.bytes[new_upper..new_upper + len].copy_from_slice(tuple);
        write_u16(&mut self.bytes, 4, new_upper as u16);
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.slot_count();
                write_u16(&mut self.bytes, 0, s + 1);
                write_u16(&mut self.bytes, 2, (Self::lp_offset(s + 1)) as u16);
                s
            }
        };
        self.set_slot(slot, new_upper as u16, len as u16, SlotState::Normal);
        Some(slot)
    }

    /// Read the tuple bytes at `slot` (regardless of MVCC state; DEAD slots
    /// still return their residual bytes until vacuumed).
    pub fn tuple(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len, state) = self.slot_entry(slot);
        if state == SlotState::Unused {
            return None;
        }
        Some(&self.bytes[off as usize..(off + len) as usize])
    }

    /// Mutable access to the tuple bytes at `slot` (for in-place header
    /// patching: xmax stamping, flag flips).
    pub fn tuple_mut(&mut self, slot: u16) -> Option<&mut [u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len, state) = self.slot_entry(slot);
        if state == SlotState::Unused {
            return None;
        }
        Some(&mut self.bytes[off as usize..(off + len) as usize])
    }

    /// Overwrite the tuple bytes at `slot` in place (same length only);
    /// used for flag updates (hidden attribute, xmax stamping).
    pub fn overwrite(&mut self, slot: u16, tuple: &[u8]) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let (off, len, state) = self.slot_entry(slot);
        if state == SlotState::Unused || len as usize != tuple.len() {
            return false;
        }
        self.bytes[off as usize..(off + len) as usize].copy_from_slice(tuple);
        true
    }

    /// Flip a slot to DEAD (logical delete; bytes remain).
    pub fn mark_dead(&mut self, slot: u16) {
        let (off, len, _) = self.slot_entry(slot);
        self.set_slot(slot, off, len, SlotState::Dead);
    }

    /// Vacuum this page: drop DEAD tuples, compact the data area, mark
    /// their slots UNUSED. Live slots keep their slot numbers (so index
    /// TIDs stay valid). Returns (#reclaimed tuples, #residual bytes wiped).
    pub fn vacuum(&mut self) -> (usize, usize) {
        let count = self.slot_count();
        let mut live: Vec<(u16, Vec<u8>)> = Vec::new();
        let mut reclaimed = 0usize;
        let mut wiped = 0usize;
        for s in 0..count {
            let (_, len, state) = self.slot_entry(s);
            match state {
                SlotState::Normal => {
                    live.push((s, self.tuple(s).expect("normal slot").to_vec()));
                }
                SlotState::Dead => {
                    reclaimed += 1;
                    wiped += len as usize;
                    self.set_slot(s, 0, 0, SlotState::Unused);
                }
                SlotState::Unused => {}
            }
        }
        // Rewrite the data area compactly from the top.
        let mut upper = PAGE_SIZE;
        // Zero the whole data area first: vacuumed bytes must not linger.
        let lower = Self::lp_offset(count);
        for b in &mut self.bytes[lower..] {
            *b = 0;
        }
        for (slot, bytes) in &live {
            upper -= bytes.len();
            self.bytes[upper..upper + bytes.len()].copy_from_slice(bytes);
            self.set_slot(*slot, upper as u16, bytes.len() as u16, SlotState::Normal);
        }
        write_u16(&mut self.bytes, 4, upper as u16);
        (reclaimed, wiped)
    }

    /// Iterate (slot, state) pairs.
    pub fn slots(&self) -> impl Iterator<Item = (u16, SlotState)> + '_ {
        (0..self.slot_count()).map(move |s| (s, self.slot_state(s)))
    }

    /// Zero the entire page (VACUUM FULL drops old pages; sanitisation).
    pub fn zero(&mut self) {
        self.bytes.fill(0);
        write_u16(&mut self.bytes, 2, HEADER_SIZE as u16);
        write_u16(&mut self.bytes, 4, PAGE_SIZE as u16);
    }
}

fn read_u16(b: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([b[at], b[at + 1]])
}

fn write_u16(b: &mut [u8], at: usize, v: u16) {
    b[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_page_is_empty() {
        let p = Page::new();
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER_SIZE);
        assert!(p.tuple(0).is_none());
    }

    #[test]
    fn insert_and_read_back() {
        let mut p = Page::new();
        let s1 = p.insert(b"hello").unwrap();
        let s2 = p.insert(b"world!").unwrap();
        assert_eq!(p.tuple(s1).unwrap(), b"hello");
        assert_eq!(p.tuple(s2).unwrap(), b"world!");
        assert_eq!(p.slot_count(), 2);
        assert_eq!(p.slot_state(s1), SlotState::Normal);
    }

    #[test]
    fn page_fills_up() {
        let mut p = Page::new();
        let tuple = vec![0xAB; 1000];
        let mut n = 0;
        while p.insert(&tuple).is_some() {
            n += 1;
        }
        // 8184 usable / 1006 per tuple ≈ 8.
        assert_eq!(n, 8);
        assert!(p.free_space() < 1006);
    }

    #[test]
    fn oversized_tuple_rejected() {
        let mut p = Page::new();
        assert!(p.insert(&vec![0; MAX_TUPLE + 1]).is_none());
        assert!(p.insert(&vec![0; MAX_TUPLE]).is_some());
    }

    #[test]
    fn dead_tuple_bytes_remain_until_vacuum() {
        let mut p = Page::new();
        let s = p.insert(b"sensitive-pii").unwrap();
        p.mark_dead(s);
        // Logical delete: the bytes are still there.
        assert_eq!(p.slot_state(s), SlotState::Dead);
        assert_eq!(p.tuple(s).unwrap(), b"sensitive-pii");
        let raw = p.as_bytes().windows(13).any(|w| w == b"sensitive-pii");
        assert!(raw, "residual bytes expected before vacuum");
        let (reclaimed, wiped) = p.vacuum();
        assert_eq!(reclaimed, 1);
        assert_eq!(wiped, 13);
        assert_eq!(p.slot_state(s), SlotState::Unused);
        assert!(p.tuple(s).is_none());
        let raw_after = p.as_bytes().windows(13).any(|w| w == b"sensitive-pii");
        assert!(!raw_after, "vacuum must wipe residual bytes on the page");
    }

    #[test]
    fn vacuum_preserves_live_slot_numbers() {
        let mut p = Page::new();
        let a = p.insert(b"aaaa").unwrap();
        let b = p.insert(b"bbbb").unwrap();
        let c = p.insert(b"cccc").unwrap();
        p.mark_dead(b);
        p.vacuum();
        assert_eq!(p.tuple(a).unwrap(), b"aaaa");
        assert_eq!(p.tuple(c).unwrap(), b"cccc");
        assert!(p.tuple(b).is_none());
    }

    #[test]
    fn vacuumed_slot_is_reused() {
        let mut p = Page::new();
        let a = p.insert(b"old-value").unwrap();
        p.mark_dead(a);
        p.vacuum();
        let b = p.insert(b"new-value").unwrap();
        assert_eq!(a, b, "unused slot reused");
        assert_eq!(p.tuple(b).unwrap(), b"new-value");
    }

    #[test]
    fn overwrite_same_length_only() {
        let mut p = Page::new();
        let s = p.insert(b"12345").unwrap();
        assert!(p.overwrite(s, b"abcde"));
        assert_eq!(p.tuple(s).unwrap(), b"abcde");
        assert!(!p.overwrite(s, b"too-long-for-slot"));
    }

    #[test]
    fn free_space_accounting_after_vacuum() {
        let mut p = Page::new();
        let before = p.free_space();
        let s = p.insert(&vec![7u8; 500]).unwrap();
        assert_eq!(p.free_space(), before - 500 - LP_SIZE);
        p.mark_dead(s);
        p.vacuum();
        // Line pointer array is kept, data reclaimed.
        assert_eq!(p.free_space(), before - LP_SIZE);
    }

    #[test]
    fn zero_wipes_everything() {
        let mut p = Page::new();
        p.insert(b"secret").unwrap();
        p.zero();
        assert_eq!(p.slot_count(), 0);
        assert!(!p.as_bytes().windows(6).any(|w| w == b"secret"));
    }

    #[test]
    fn roundtrip_from_bytes() {
        let mut p = Page::new();
        p.insert(b"persisted").unwrap();
        let restored = Page::from_bytes(p.as_bytes().to_vec());
        assert_eq!(restored.tuple(0).unwrap(), b"persisted");
    }

    proptest::proptest! {
        #[test]
        fn inserted_tuples_always_readable(
            payloads in proptest::collection::vec(
                proptest::collection::vec(1u8..=255, 1..300), 1..20)
        ) {
            let mut p = Page::new();
            let mut stored: Vec<(u16, Vec<u8>)> = Vec::new();
            for pl in &payloads {
                if let Some(slot) = p.insert(pl) {
                    stored.push((slot, pl.clone()));
                }
            }
            for (slot, pl) in &stored {
                proptest::prop_assert_eq!(p.tuple(*slot).unwrap(), pl.as_slice());
            }
        }

        #[test]
        fn vacuum_never_loses_live_tuples(
            kill in proptest::collection::vec(proptest::bool::ANY, 10)
        ) {
            let mut p = Page::new();
            let mut slots = Vec::new();
            for i in 0..10u8 {
                let payload = vec![i + 1; 50];
                slots.push((p.insert(&payload).unwrap(), payload));
            }
            for (i, &dead) in kill.iter().enumerate() {
                if dead {
                    p.mark_dead(slots[i].0);
                }
            }
            p.vacuum();
            for (i, &dead) in kill.iter().enumerate() {
                let (slot, ref payload) = slots[i];
                if dead {
                    proptest::prop_assert!(p.tuple(slot).is_none());
                } else {
                    proptest::prop_assert_eq!(p.tuple(slot).unwrap(), payload.as_slice());
                }
            }
        }
    }
}
