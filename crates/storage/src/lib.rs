#![warn(missing_docs)]
//! # datacase-storage
//!
//! The storage substrates of the Data-CASE reproduction — everything the
//! paper's evaluation ran on PostgreSQL and discusses for LSM/NoSQL
//! engines, built from scratch:
//!
//! * [`page`] — 8 KiB slotted pages where DELETE leaves dead bytes behind;
//! * [`tuple`](mod@tuple) — MVCC tuple encoding with the `HIDDEN` attribute that
//!   grounds *reversible inaccessibility*;
//! * [`txn`] — transaction ids, snapshots, visibility;
//! * [`disk`] — the simulated drive, with optional LUKS-style sector
//!   encryption and a *remanence* layer distinguishing strong from
//!   permanent deletion;
//! * [`buffer`] — LRU buffer pool;
//! * [`btree`] / [`hashindex`] — real index structures whose dead-entry
//!   probes are part of Figure 4a's cost story;
//! * [`fsm`] — free-space map;
//! * [`wal`] — write-ahead log (durability *and* retention hazard);
//! * [`heap`] — the PostgreSQL-style engine: INSERT/SELECT/UPDATE/DELETE,
//!   VACUUM, VACUUM FULL, hidden-attribute updates, crash recovery,
//!   drive sanitisation;
//! * [`lsm`] — memtable + SSTables + bloom filters + tombstones + tiered
//!   compaction (the Cassandra-style engine from the paper's intro);
//! * [`replica`] — copy-tracked replication (the intro's "track the
//!   copies and delete all of them");
//! * [`forensic`] — the independent residual scanner that makes Table 1's
//!   property matrix *measurable*;
//! * [`backend`] — the [`backend::StorageBackend`] contract the
//!   compliance layer composes over, implemented for the heap and (via
//!   [`backend::LsmBackend`]) the LSM tree.

pub mod backend;
pub mod btree;
pub mod buffer;
pub mod disk;
pub mod error;
pub mod forensic;
pub mod fsm;
pub mod hashindex;
pub mod heap;
pub mod lsm;
pub mod page;
pub mod replica;
pub mod tuple;
pub mod txn;
pub mod wal;

pub use backend::{
    BackendKind, BackendStats, LsmBackend, MaintenanceDepth, MaintenanceStats, StorageBackend,
};
pub use error::{Result, StorageError};
pub use forensic::{scan_heap, scan_lsm, ForensicFindings};
pub use heap::{HeapConfig, HeapDb, HeapStats, VacuumStats};
pub use lsm::{LsmConfig, LsmStats, LsmTree};
pub use replica::ReplicatedHeap;
pub use tuple::Tid;
