//! A bucket-chained hash index (the heap's fast key→TID path, and the
//! policy middleware's lookup structure).

use datacase_sim::{Meter, SimClock};

use crate::tuple::Tid;

/// Hash index over `(key, Tid)` pairs with duplicate keys (MVCC versions).
pub struct HashIndex {
    buckets: Vec<Vec<(u64, Tid)>>,
    len: usize,
    clock: SimClock,
    meter: std::sync::Arc<Meter>,
}

impl std::fmt::Debug for HashIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HashIndex")
            .field("entries", &self.len)
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

fn hash64(mut x: u64) -> u64 {
    // Fibonacci/avalanche mix (splitmix64 finaliser).
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl HashIndex {
    /// An empty index.
    pub fn new(clock: SimClock, meter: std::sync::Arc<Meter>) -> HashIndex {
        HashIndex {
            buckets: vec![Vec::new(); 16],
            len: 0,
            clock,
            meter,
        }
    }

    fn probe(&self) {
        self.clock.charge_nanos(self.clock.model().index_probe);
        Meter::bump(&self.meter.index_probes, 1);
    }

    fn bucket_of(&self, key: u64) -> usize {
        (hash64(key) % self.buckets.len() as u64) as usize
    }

    fn maybe_grow(&mut self) {
        if self.len < self.buckets.len() * 3 / 4 {
            return;
        }
        let new_size = self.buckets.len() * 2;
        let mut fresh: Vec<Vec<(u64, Tid)>> = vec![Vec::new(); new_size];
        for bucket in self.buckets.drain(..) {
            for (k, t) in bucket {
                fresh[(hash64(k) % new_size as u64) as usize].push((k, t));
            }
        }
        self.buckets = fresh;
    }

    /// Insert an entry.
    pub fn insert(&mut self, key: u64, tid: Tid) {
        self.clock.charge_nanos(self.clock.model().index_maintain);
        self.maybe_grow();
        let b = self.bucket_of(key);
        self.buckets[b].push((key, tid));
        self.len += 1;
    }

    /// All tids for `key`.
    pub fn get(&self, key: u64) -> Vec<Tid> {
        self.probe();
        let b = self.bucket_of(key);
        self.buckets[b]
            .iter()
            .filter(|(k, _)| *k == key)
            .map(|&(_, t)| t)
            .collect()
    }

    /// Remove one `(key, tid)` entry; returns whether present.
    pub fn remove(&mut self, key: u64, tid: Tid) -> bool {
        self.clock.charge_nanos(self.clock.model().index_maintain);
        let b = self.bucket_of(key);
        if let Some(pos) = self.buckets[b]
            .iter()
            .position(|&(k, t)| k == key && t == tid)
        {
            self.buckets[b].swap_remove(pos);
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Estimated bytes (Table 2 accounting).
    pub fn size_bytes(&self) -> u64 {
        (self.len * 16 + self.buckets.len() * 8) as u64
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn mk() -> HashIndex {
        HashIndex::new(SimClock::commodity(), Arc::new(Meter::new()))
    }

    fn tid(n: u32) -> Tid {
        Tid { page: n, slot: 0 }
    }

    #[test]
    fn insert_get_remove() {
        let mut ix = mk();
        ix.insert(10, tid(1));
        ix.insert(20, tid(2));
        assert_eq!(ix.get(10), vec![tid(1)]);
        assert!(ix.remove(10, tid(1)));
        assert!(ix.get(10).is_empty());
        assert!(!ix.remove(10, tid(1)));
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn grows_beyond_initial_buckets() {
        let mut ix = mk();
        for i in 0..10_000u64 {
            ix.insert(i, tid(i as u32));
        }
        assert_eq!(ix.len(), 10_000);
        for i in (0..10_000u64).step_by(371) {
            assert_eq!(ix.get(i), vec![tid(i as u32)]);
        }
    }

    #[test]
    fn duplicates_supported() {
        let mut ix = mk();
        ix.insert(5, tid(1));
        ix.insert(5, tid(2));
        let mut got = ix.get(5);
        got.sort();
        assert_eq!(got, vec![tid(1), tid(2)]);
        assert!(ix.remove(5, tid(2)));
        assert_eq!(ix.get(5), vec![tid(1)]);
    }

    #[test]
    fn clear_empties() {
        let mut ix = mk();
        for i in 0..100u64 {
            ix.insert(i, tid(i as u32));
        }
        ix.clear();
        assert!(ix.is_empty());
        assert!(ix.get(5).is_empty());
    }

    #[test]
    fn probes_metered() {
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        let mut ix = HashIndex::new(clock, meter.clone());
        ix.insert(1, tid(1));
        let before = meter.snapshot().index_probes;
        let _ = ix.get(1);
        assert_eq!(meter.snapshot().index_probes, before + 1);
    }

    proptest::proptest! {
        #[test]
        fn matches_reference(
            keys in proptest::collection::vec(0u64..100, 1..200)
        ) {
            let mut ix = mk();
            let mut model: std::collections::HashMap<u64, Vec<Tid>> = Default::default();
            for (i, &k) in keys.iter().enumerate() {
                let t = tid(i as u32);
                ix.insert(k, t);
                model.entry(k).or_default().push(t);
            }
            for (k, want) in &model {
                let mut got = ix.get(*k);
                got.sort();
                let mut want = want.clone();
                want.sort();
                proptest::prop_assert_eq!(got, want);
            }
        }
    }
}
