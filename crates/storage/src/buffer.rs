//! A small LRU buffer pool over the simulated disk.
//!
//! Cache hits charge the (cheap) cached-read cost; misses pay real disk
//! I/O via [`crate::disk::Disk`]. Dirty frames are written back on
//! eviction and on `flush_all`, so the disk image converges to the logical
//! state — which matters because forensics reads the *disk*.

use std::collections::HashMap;

use datacase_sim::{Meter, SimClock};

use crate::disk::Disk;
use crate::page::Page;

struct Frame {
    page: Page,
    dirty: bool,
    last_used: u64,
}

/// LRU page cache.
pub struct BufferPool {
    capacity: usize,
    frames: HashMap<u32, Frame>,
    tick: u64,
    clock: SimClock,
    meter: std::sync::Arc<Meter>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("cached", &self.frames.len())
            .finish()
    }
}

impl BufferPool {
    /// A pool caching up to `capacity` pages.
    pub fn new(capacity: usize, clock: SimClock, meter: std::sync::Arc<Meter>) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            frames: HashMap::with_capacity(capacity),
            tick: 0,
            clock,
            meter,
        }
    }

    fn touch(&mut self, id: u32) {
        self.tick += 1;
        if let Some(f) = self.frames.get_mut(&id) {
            f.last_used = self.tick;
        }
    }

    fn ensure_cached(&mut self, disk: &mut Disk, id: u32, sequential: bool) {
        if self.frames.contains_key(&id) {
            self.clock.charge_nanos(self.clock.model().page_read_cached);
            Meter::bump(&self.meter.pages_read_cached, 1);
            self.touch(id);
            return;
        }
        // Miss: evict if full, then load.
        if self.frames.len() >= self.capacity {
            let victim = self
                .frames
                .iter()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(id, _)| *id)
                .expect("non-empty pool");
            self.evict(disk, victim);
        }
        let data = if sequential {
            disk.read_page_seq(id)
        } else {
            disk.read_page(id)
        };
        self.tick += 1;
        self.frames.insert(
            id,
            Frame {
                page: Page::from_bytes(data),
                dirty: false,
                last_used: self.tick,
            },
        );
    }

    fn evict(&mut self, disk: &mut Disk, id: u32) {
        if let Some(f) = self.frames.remove(&id) {
            if f.dirty {
                disk.write_page(id, f.page.as_bytes());
            }
        }
    }

    /// Read-only access to a page, through the cache.
    pub fn page(&mut self, disk: &mut Disk, id: u32) -> &Page {
        self.ensure_cached(disk, id, false);
        &self.frames[&id].page
    }

    /// Read-only access during a sequential pass (misses are charged at
    /// the sequential-I/O rate).
    pub fn page_seq(&mut self, disk: &mut Disk, id: u32) -> &Page {
        self.ensure_cached(disk, id, true);
        &self.frames[&id].page
    }

    /// Mutable access to a page; marks the frame dirty.
    pub fn page_mut(&mut self, disk: &mut Disk, id: u32) -> &mut Page {
        self.ensure_cached(disk, id, false);
        let f = self.frames.get_mut(&id).expect("just cached");
        f.dirty = true;
        &mut f.page
    }

    /// Drop a page from the cache without write-back (the page was zeroed
    /// or truncated on disk directly, e.g. by VACUUM FULL).
    pub fn discard(&mut self, id: u32) {
        self.frames.remove(&id);
    }

    /// Mark a cached frame clean (its content was just written to disk by
    /// the caller, e.g. vacuum's sequential ring-buffer write).
    pub fn mark_clean(&mut self, id: u32) {
        if let Some(f) = self.frames.get_mut(&id) {
            f.dirty = false;
        }
    }

    /// Write every dirty frame back to disk (checkpoint).
    pub fn flush_all(&mut self, disk: &mut Disk) {
        let mut ids: Vec<u32> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            let f = self.frames.get_mut(&id).expect("listed");
            disk.write_page(id, f.page.as_bytes());
            f.dirty = false;
        }
    }

    /// Drop the whole cache without write-back — simulates a crash, for
    /// recovery tests.
    pub fn crash(&mut self) {
        self.frames.clear();
    }

    /// Number of cached pages.
    pub fn cached(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn setup(capacity: usize) -> (BufferPool, Disk, SimClock, Arc<Meter>) {
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        let disk = Disk::new(clock.clone(), meter.clone());
        let pool = BufferPool::new(capacity, clock.clone(), meter.clone());
        (pool, disk, clock, meter)
    }

    #[test]
    fn hits_are_cheaper_than_misses() {
        let (mut pool, mut disk, clock, _) = setup(4);
        let id = disk.allocate();
        let t0 = clock.now();
        let _ = pool.page(&mut disk, id); // miss
        let miss_cost = clock.now().since(t0);
        let t1 = clock.now();
        let _ = pool.page(&mut disk, id); // hit
        let hit_cost = clock.now().since(t1);
        assert!(miss_cost.0 > 10 * hit_cost.0);
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let (mut pool, mut disk, _, meter) = setup(2);
        let a = disk.allocate();
        let b = disk.allocate();
        let c = disk.allocate();
        pool.page_mut(&mut disk, a).insert(b"page-a-data").unwrap();
        let _ = pool.page(&mut disk, b);
        let written_before = meter.snapshot().pages_written;
        let _ = pool.page(&mut disk, c); // evicts a (LRU)
        assert_eq!(meter.snapshot().pages_written, written_before + 1);
        // Disk now holds a's data.
        assert_eq!(disk.scan_raw(b"page-a-data"), vec![a]);
    }

    #[test]
    fn flush_all_persists_dirty_frames() {
        let (mut pool, mut disk, _, _) = setup(8);
        let a = disk.allocate();
        pool.page_mut(&mut disk, a).insert(b"flush-me").unwrap();
        assert!(disk.scan_raw(b"flush-me").is_empty(), "not yet on disk");
        pool.flush_all(&mut disk);
        assert_eq!(disk.scan_raw(b"flush-me"), vec![a]);
    }

    #[test]
    fn crash_loses_unflushed_writes() {
        let (mut pool, mut disk, _, _) = setup(8);
        let a = disk.allocate();
        pool.page_mut(&mut disk, a).insert(b"volatile").unwrap();
        pool.crash();
        assert!(disk.scan_raw(b"volatile").is_empty());
        // Reloading gives the empty on-disk page.
        let p = pool.page(&mut disk, a);
        assert_eq!(p.slot_count(), 0);
    }

    #[test]
    fn capacity_bound_respected() {
        let (mut pool, mut disk, _, _) = setup(3);
        for _ in 0..10 {
            let id = disk.allocate();
            let _ = pool.page(&mut disk, id);
        }
        assert!(pool.cached() <= 3);
    }

    #[test]
    fn discard_drops_without_writeback() {
        let (mut pool, mut disk, _, _) = setup(4);
        let a = disk.allocate();
        pool.page_mut(&mut disk, a).insert(b"gone").unwrap();
        pool.discard(a);
        pool.flush_all(&mut disk);
        assert!(disk.scan_raw(b"gone").is_empty());
    }
}
