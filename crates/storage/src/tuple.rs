//! Heap tuple encoding: MVCC header + payload.
//!
//! The header carries `xmin`/`xmax` (creating/deleting transaction ids),
//! the Data-CASE unit id, the record key, and flags — including the
//! `HIDDEN` bit that implements the *reversibly inaccessible* erasure
//! grounding ("add new attribute" in Table 1).

/// Tuple flag: hidden from data-subject reads (reversible inaccessibility).
pub const FLAG_HIDDEN: u16 = 1 << 0;
/// Tuple flag: payload is encrypted at rest (per-tuple encryption).
pub const FLAG_ENCRYPTED: u16 = 1 << 1;

/// Size of the fixed tuple header.
pub const TUPLE_HEADER: usize = 8 + 8 + 8 + 8 + 2 + 2;

/// A tuple identifier: (page, slot).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Tid {
    /// Page number within the table.
    pub page: u32,
    /// Slot within the page.
    pub slot: u16,
}

impl std::fmt::Display for Tid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.page, self.slot)
    }
}

/// Decoded MVCC tuple header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TupleHeader {
    /// Transaction that created this version.
    pub xmin: u64,
    /// Transaction that deleted it (0 = live).
    pub xmax: u64,
    /// Data-CASE unit id the record belongs to.
    pub unit_id: u64,
    /// Record key.
    pub key: u64,
    /// Flag bits.
    pub flags: u16,
}

impl TupleHeader {
    /// A live header for a new version.
    pub fn new(xmin: u64, unit_id: u64, key: u64) -> TupleHeader {
        TupleHeader {
            xmin,
            xmax: 0,
            unit_id,
            key,
            flags: 0,
        }
    }

    /// Is the HIDDEN flag set?
    pub fn is_hidden(&self) -> bool {
        self.flags & FLAG_HIDDEN != 0
    }

    /// Is the payload encrypted?
    pub fn is_encrypted(&self) -> bool {
        self.flags & FLAG_ENCRYPTED != 0
    }
}

/// Encode header + payload into on-page bytes.
pub fn encode(header: &TupleHeader, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(TUPLE_HEADER + payload.len());
    out.extend_from_slice(&header.xmin.to_le_bytes());
    out.extend_from_slice(&header.xmax.to_le_bytes());
    out.extend_from_slice(&header.unit_id.to_le_bytes());
    out.extend_from_slice(&header.key.to_le_bytes());
    out.extend_from_slice(&header.flags.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u16).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decode on-page bytes into (header, payload).
///
/// # Panics
/// Panics if `bytes` is shorter than the fixed header or the declared
/// payload length — pages are trusted storage, such corruption is a bug.
pub fn decode(bytes: &[u8]) -> (TupleHeader, &[u8]) {
    assert!(bytes.len() >= TUPLE_HEADER, "truncated tuple");
    let xmin = u64::from_le_bytes(bytes[0..8].try_into().expect("8"));
    let xmax = u64::from_le_bytes(bytes[8..16].try_into().expect("8"));
    let unit_id = u64::from_le_bytes(bytes[16..24].try_into().expect("8"));
    let key = u64::from_le_bytes(bytes[24..32].try_into().expect("8"));
    let flags = u16::from_le_bytes(bytes[32..34].try_into().expect("2"));
    let len = u16::from_le_bytes(bytes[34..36].try_into().expect("2")) as usize;
    assert!(bytes.len() >= TUPLE_HEADER + len, "truncated payload");
    (
        TupleHeader {
            xmin,
            xmax,
            unit_id,
            key,
            flags,
        },
        &bytes[TUPLE_HEADER..TUPLE_HEADER + len],
    )
}

/// Re-encode only the header fields over existing tuple bytes (in-place
/// xmax stamping / flag flips without touching the payload).
pub fn patch_header(bytes: &mut [u8], header: &TupleHeader) {
    bytes[0..8].copy_from_slice(&header.xmin.to_le_bytes());
    bytes[8..16].copy_from_slice(&header.xmax.to_le_bytes());
    bytes[16..24].copy_from_slice(&header.unit_id.to_le_bytes());
    bytes[24..32].copy_from_slice(&header.key.to_le_bytes());
    bytes[32..34].copy_from_slice(&header.flags.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let h = TupleHeader {
            xmin: 42,
            xmax: 0,
            unit_id: 7,
            key: 1234,
            flags: FLAG_HIDDEN,
        };
        let bytes = encode(&h, b"payload-bytes");
        let (h2, p) = decode(&bytes);
        assert_eq!(h, h2);
        assert_eq!(p, b"payload-bytes");
        assert!(h2.is_hidden());
        assert!(!h2.is_encrypted());
    }

    #[test]
    fn patch_header_keeps_payload() {
        let h = TupleHeader::new(1, 9, 55);
        let mut bytes = encode(&h, b"data");
        let mut h2 = h;
        h2.xmax = 77;
        h2.flags |= FLAG_ENCRYPTED;
        patch_header(&mut bytes, &h2);
        let (h3, p) = decode(&bytes);
        assert_eq!(h3.xmax, 77);
        assert!(h3.is_encrypted());
        assert_eq!(p, b"data");
    }

    #[test]
    fn empty_payload_ok() {
        let h = TupleHeader::new(1, 2, 3);
        let bytes = encode(&h, b"");
        let (_, p) = decode(&bytes);
        assert!(p.is_empty());
        assert_eq!(bytes.len(), TUPLE_HEADER);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_decode_panics() {
        let _ = decode(&[0u8; 10]);
    }

    #[test]
    fn tid_display() {
        assert_eq!(format!("{}", Tid { page: 3, slot: 9 }), "(3,9)");
    }

    proptest::proptest! {
        #[test]
        fn roundtrip_any_payload(
            xmin in proptest::prelude::any::<u64>(),
            key in proptest::prelude::any::<u64>(),
            payload in proptest::collection::vec(0u8..=255, 0..1000)
        ) {
            let h = TupleHeader::new(xmin, key ^ 1, key);
            let bytes = encode(&h, &payload);
            let (h2, p2) = decode(&bytes);
            proptest::prop_assert_eq!(h, h2);
            proptest::prop_assert_eq!(p2, payload.as_slice());
        }
    }
}
