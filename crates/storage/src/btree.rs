//! A B+tree index from record keys to tuple ids.
//!
//! Real structure, not a wrapper: arena-allocated nodes, leaf chaining for
//! range scans, splits on overflow, lazy deletion (no rebalancing — like
//! PostgreSQL, pages go half-empty until vacuum/reindex). MVCC keeps one
//! index entry per tuple *version*, so duplicate record keys are routine;
//! the tree therefore orders entries by the composite `(key, Tid)`, which
//! is unique, and internal separators carry the full composite (this is
//! how real B-trees avoid losing duplicates that straddle a split).
//! Readers filter by visibility, and VACUUM removes entries for reclaimed
//! versions — the "dead index probe" cost that figures 4a/4c exercise.

use datacase_sim::{Meter, SimClock};

use crate::tuple::Tid;

const ORDER: usize = 64; // max entries per node before split

type Composite = (u64, Tid);

const TID_MIN: Tid = Tid { page: 0, slot: 0 };

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        entries: Vec<Composite>,
        next: Option<u32>,
    },
    Internal {
        keys: Vec<Composite>,
        children: Vec<u32>,
    },
}

/// B+tree index over `(key, Tid)` pairs.
pub struct BTreeIndex {
    nodes: Vec<Node>,
    root: u32,
    len: usize,
    clock: SimClock,
    meter: std::sync::Arc<Meter>,
}

impl std::fmt::Debug for BTreeIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTreeIndex")
            .field("entries", &self.len)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl BTreeIndex {
    /// An empty index.
    pub fn new(clock: SimClock, meter: std::sync::Arc<Meter>) -> BTreeIndex {
        BTreeIndex {
            nodes: vec![Node::Leaf {
                entries: Vec::new(),
                next: None,
            }],
            root: 0,
            len: 0,
            clock,
            meter,
        }
    }

    fn probe(&self) {
        self.clock.charge_nanos(self.clock.model().index_probe);
        Meter::bump(&self.meter.index_probes, 1);
    }

    fn maintain(&self) {
        self.clock.charge_nanos(self.clock.model().index_maintain);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Estimated index size in bytes (entries + node overhead), used by
    /// Table 2's space accounting.
    pub fn size_bytes(&self) -> u64 {
        (self.len * 16 + self.nodes.len() * 32) as u64
    }

    /// Descend to the leaf that would contain composite `c`, recording the
    /// path of internal nodes.
    fn descend(&self, c: Composite, path: &mut Vec<u32>) -> u32 {
        let mut id = self.root;
        loop {
            self.probe();
            match &self.nodes[id as usize] {
                Node::Leaf { .. } => return id,
                Node::Internal { keys, children } => {
                    path.push(id);
                    let idx = keys.partition_point(|&k| k <= c);
                    id = children[idx];
                }
            }
        }
    }

    /// Insert an entry (duplicate record keys allowed; `(key, tid)` pairs
    /// must be unique, which the heap guarantees).
    pub fn insert(&mut self, key: u64, tid: Tid) {
        self.maintain();
        let c = (key, tid);
        let mut path = Vec::new();
        let leaf_id = self.descend(c, &mut path);
        let Node::Leaf { entries, .. } = &mut self.nodes[leaf_id as usize] else {
            unreachable!("descend returns a leaf")
        };
        let pos = entries.partition_point(|&e| e < c);
        entries.insert(pos, c);
        self.len += 1;
        if entries.len() > ORDER {
            self.split_leaf(leaf_id, path);
        }
    }

    fn split_leaf(&mut self, leaf_id: u32, path: Vec<u32>) {
        let new_id = self.nodes.len() as u32;
        let (sep, right) = {
            let Node::Leaf { entries, next } = &mut self.nodes[leaf_id as usize] else {
                unreachable!()
            };
            let mid = entries.len() / 2;
            let right_entries: Vec<Composite> = entries.split_off(mid);
            let sep = right_entries[0];
            let right = Node::Leaf {
                entries: right_entries,
                next: *next,
            };
            *next = Some(new_id);
            (sep, right)
        };
        self.nodes.push(right);
        self.insert_into_parent(path, leaf_id, sep, new_id);
    }

    fn insert_into_parent(&mut self, mut path: Vec<u32>, left: u32, sep: Composite, right: u32) {
        match path.pop() {
            None => {
                // left was the root: grow a new root.
                let new_root = Node::Internal {
                    keys: vec![sep],
                    children: vec![left, right],
                };
                self.nodes.push(new_root);
                self.root = (self.nodes.len() - 1) as u32;
            }
            Some(parent_id) => {
                let needs_split = {
                    let Node::Internal { keys, children } = &mut self.nodes[parent_id as usize]
                    else {
                        unreachable!("path holds internals")
                    };
                    let idx = keys.partition_point(|&k| k <= sep);
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    keys.len() > ORDER
                };
                if needs_split {
                    self.split_internal(parent_id, path);
                }
            }
        }
    }

    fn split_internal(&mut self, node_id: u32, path: Vec<u32>) {
        let new_id = self.nodes.len() as u32;
        let (promoted, right) = {
            let Node::Internal { keys, children } = &mut self.nodes[node_id as usize] else {
                unreachable!()
            };
            let mid = keys.len() / 2;
            let promoted = keys[mid];
            let right_keys: Vec<Composite> = keys.split_off(mid + 1);
            keys.pop(); // remove the promoted key from the left node
            let right_children: Vec<u32> = children.split_off(mid + 1);
            (
                promoted,
                Node::Internal {
                    keys: right_keys,
                    children: right_children,
                },
            )
        };
        self.nodes.push(right);
        self.insert_into_parent(path, node_id, promoted, new_id);
    }

    /// All tids indexed under `key` (across MVCC versions), in Tid order.
    pub fn get(&self, key: u64) -> Vec<Tid> {
        let mut path = Vec::new();
        let mut leaf_id = self.descend((key, TID_MIN), &mut path);
        let mut out = Vec::new();
        'outer: loop {
            let Node::Leaf { entries, next } = &self.nodes[leaf_id as usize] else {
                unreachable!()
            };
            for &(k, t) in entries {
                if k > key {
                    break 'outer;
                }
                if k == key {
                    out.push(t);
                }
            }
            match next {
                Some(n) => {
                    leaf_id = *n;
                    self.probe();
                }
                None => break,
            }
        }
        out
    }

    /// Remove one `(key, tid)` entry; returns whether it was present.
    pub fn remove(&mut self, key: u64, tid: Tid) -> bool {
        self.maintain();
        let c = (key, tid);
        let mut path = Vec::new();
        let leaf_id = self.descend(c, &mut path);
        let Node::Leaf { entries, .. } = &mut self.nodes[leaf_id as usize] else {
            unreachable!()
        };
        match entries.binary_search(&c) {
            Ok(pos) => {
                entries.remove(pos);
                self.len -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// All entries with `lo <= key <= hi`, in (key, tid) order.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, Tid)> {
        let mut path = Vec::new();
        let mut leaf_id = self.descend((lo, TID_MIN), &mut path);
        let mut out = Vec::new();
        loop {
            let Node::Leaf { entries, next } = &self.nodes[leaf_id as usize] else {
                unreachable!()
            };
            for &(k, t) in entries {
                if k > hi {
                    return out;
                }
                if k >= lo {
                    out.push((k, t));
                }
            }
            match next {
                Some(n) => {
                    leaf_id = *n;
                    self.probe();
                }
                None => return out,
            }
        }
    }

    /// Drop all entries (rebuild support for VACUUM FULL).
    pub fn clear(&mut self) {
        self.nodes = vec![Node::Leaf {
            entries: Vec::new(),
            next: None,
        }];
        self.root = 0;
        self.len = 0;
    }

    /// Depth of the tree (1 = just a leaf). For tests and stats.
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Leaf { .. } => return d,
                Node::Internal { children, .. } => {
                    d += 1;
                    id = children[0];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn mk() -> BTreeIndex {
        BTreeIndex::new(SimClock::commodity(), Arc::new(Meter::new()))
    }

    fn tid(n: u32) -> Tid {
        Tid {
            page: n,
            slot: (n % 7) as u16,
        }
    }

    #[test]
    fn insert_get_small() {
        let mut ix = mk();
        ix.insert(5, tid(1));
        ix.insert(3, tid(2));
        ix.insert(9, tid(3));
        assert_eq!(ix.get(5), vec![tid(1)]);
        assert_eq!(ix.get(3), vec![tid(2)]);
        assert_eq!(ix.get(4), Vec::<Tid>::new());
        assert_eq!(ix.len(), 3);
    }

    #[test]
    fn many_inserts_cause_splits_and_stay_searchable() {
        let mut ix = mk();
        for i in 0..5000u64 {
            ix.insert(i, tid(i as u32));
        }
        assert!(ix.depth() >= 2, "splits must have happened");
        for i in (0..5000u64).step_by(97) {
            assert_eq!(ix.get(i), vec![tid(i as u32)], "key {i}");
        }
        assert_eq!(ix.len(), 5000);
    }

    #[test]
    fn reverse_and_random_order_inserts() {
        let mut ix = mk();
        for i in (0..2000u64).rev() {
            ix.insert(i, tid(i as u32));
        }
        for i in 0..2000u64 {
            assert_eq!(ix.get(i).len(), 1, "key {i}");
        }
    }

    #[test]
    fn duplicates_per_mvcc_version() {
        let mut ix = mk();
        ix.insert(7, tid(1));
        ix.insert(7, tid(2));
        ix.insert(7, tid(3));
        let got = ix.get(7);
        assert_eq!(got, vec![tid(1), tid(2), tid(3)], "tid order");
    }

    #[test]
    fn duplicates_survive_splits() {
        // Force many duplicates of one key across splits.
        let mut ix = mk();
        for i in 0..500u32 {
            ix.insert(42, Tid { page: i, slot: 0 });
        }
        for i in 0..500u64 {
            ix.insert(i * 2 + 1000, tid(i as u32));
        }
        assert_eq!(ix.get(42).len(), 500);
        assert!(ix.depth() >= 2);
    }

    #[test]
    fn remove_specific_version() {
        let mut ix = mk();
        ix.insert(7, tid(1));
        ix.insert(7, tid(2));
        assert!(ix.remove(7, tid(1)));
        assert_eq!(ix.get(7), vec![tid(2)]);
        assert!(!ix.remove(7, tid(1)), "already removed");
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn remove_duplicates_across_splits() {
        let mut ix = mk();
        for i in 0..300u32 {
            ix.insert(5, Tid { page: i, slot: 0 });
        }
        for i in 0..300u32 {
            assert!(ix.remove(5, Tid { page: i, slot: 0 }), "tid {i}");
        }
        assert!(ix.get(5).is_empty());
        assert_eq!(ix.len(), 0);
    }

    #[test]
    fn range_scan_in_order() {
        let mut ix = mk();
        for i in [5u64, 1, 9, 3, 7, 2, 8] {
            ix.insert(i, tid(i as u32));
        }
        let r = ix.range(3, 8);
        let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![3, 5, 7, 8]);
    }

    #[test]
    fn range_across_leaf_boundaries() {
        let mut ix = mk();
        for i in 0..1000u64 {
            ix.insert(i, tid(i as u32));
        }
        let r = ix.range(100, 899);
        assert_eq!(r.len(), 800);
        assert!(r.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn clear_resets() {
        let mut ix = mk();
        for i in 0..500u64 {
            ix.insert(i, tid(i as u32));
        }
        ix.clear();
        assert!(ix.is_empty());
        assert_eq!(ix.get(5), Vec::<Tid>::new());
        ix.insert(5, tid(9));
        assert_eq!(ix.get(5), vec![tid(9)]);
    }

    #[test]
    fn probes_charge_cost() {
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        let mut ix = BTreeIndex::new(clock.clone(), meter.clone());
        for i in 0..100u64 {
            ix.insert(i, tid(i as u32));
        }
        let before = meter.snapshot().index_probes;
        let _ = ix.get(50);
        assert!(meter.snapshot().index_probes > before);
        assert!(clock.now().0 > 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        #[test]
        fn behaves_like_reference_multimap(
            ops in proptest::collection::vec(
                (0u64..200, 0u32..50, proptest::bool::ANY), 1..400)
        ) {
            let mut ix = mk();
            let mut model: std::collections::BTreeSet<(u64, Tid)> = Default::default();
            for (key, t, is_insert) in ops {
                let tv = tid(t);
                if is_insert {
                    // Avoid duplicate (key,tid) pairs — the heap never
                    // indexes the same version twice.
                    if model.insert((key, tv)) {
                        ix.insert(key, tv);
                    }
                } else {
                    let expected = model.remove(&(key, tv));
                    proptest::prop_assert_eq!(ix.remove(key, tv), expected);
                }
            }
            proptest::prop_assert_eq!(ix.len(), model.len());
            for key in 0u64..200 {
                let got = ix.get(key);
                let want: Vec<Tid> = model
                    .range((key, TID_MIN)..=(key, Tid { page: u32::MAX, slot: u16::MAX }))
                    .map(|&(_, t)| t)
                    .collect();
                proptest::prop_assert_eq!(&got, &want, "key {}", key);
            }
        }
    }
}
