//! Immutable sorted runs (SSTables) with Bloom filters.

use super::bloom::Bloom;
use super::memtable::Entry;

/// An immutable sorted run.
#[derive(Clone, Debug)]
pub struct SsTable {
    entries: Vec<(u64, Entry)>,
    bloom: Bloom,
    bytes: u64,
    tombstones: usize,
}

impl SsTable {
    /// Build a run from key-sorted entries (as drained from a memtable).
    pub fn build(entries: Vec<(u64, Entry)>) -> SsTable {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let mut bloom = Bloom::for_items(entries.len());
        let mut bytes = 0u64;
        let mut tombstones = 0usize;
        for (k, e) in &entries {
            bloom.insert(*k);
            bytes += e.size() as u64;
            if e.is_tombstone() {
                tombstones += 1;
            }
        }
        SsTable {
            entries,
            bloom,
            bytes,
            tombstones,
        }
    }

    /// Bloom-filter membership check.
    pub fn might_contain(&self, key: u64) -> bool {
        self.bloom.might_contain(key)
    }

    /// Entry for `key`, if present in this run.
    pub fn get(&self, key: u64) -> Option<&Entry> {
        self.entries
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Entries with `lo <= key <= hi`.
    pub fn range(&self, lo: u64, hi: u64) -> impl Iterator<Item = (u64, &Entry)> {
        let start = self.entries.partition_point(|(k, _)| *k < lo);
        self.entries[start..]
            .iter()
            .take_while(move |(k, _)| *k <= hi)
            .map(|(k, e)| (*k, e))
    }

    /// Number of entries (values + tombstones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the run is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total payload bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Tombstone count.
    pub fn tombstones(&self) -> usize {
        self.tombstones
    }

    /// K-way merge of runs, newest entry per key surviving. When
    /// `drop_tombstones` (merging into the last level), tombstones are
    /// discarded once they have shadowed everything below.
    ///
    /// Generic over anything that borrows a run (`SsTable`,
    /// `Arc<SsTable>`), since the tree shares its immutable runs with the
    /// durable manifest.
    pub fn merge<R: std::borrow::Borrow<SsTable>>(runs: &[R], drop_tombstones: bool) -> SsTable {
        use std::collections::BTreeMap;
        let mut best: BTreeMap<u64, &Entry> = BTreeMap::new();
        for run in runs {
            for (k, e) in &run.borrow().entries {
                match best.get(k) {
                    Some(cur) if cur.seq() >= e.seq() => {}
                    _ => {
                        best.insert(*k, e);
                    }
                }
            }
        }
        let merged: Vec<(u64, Entry)> = best
            .into_iter()
            .filter(|(_, e)| !(drop_tombstones && e.is_tombstone()))
            .map(|(k, e)| (k, e.clone()))
            .collect();
        SsTable::build(merged)
    }

    /// Copy of this run without any entry belonging to `unit_id`; returns
    /// the new run and the number of entries removed.
    pub fn without_unit(&self, unit_id: u64) -> (SsTable, usize) {
        let kept: Vec<(u64, Entry)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.unit_id() != unit_id)
            .cloned()
            .collect();
        let removed = self.entries.len() - kept.len();
        (SsTable::build(kept), removed)
    }

    /// Forensic scan: how many entries' payloads contain `needle`.
    pub fn scan_physical(&self, needle: &[u8]) -> usize {
        if needle.is_empty() {
            return 0;
        }
        self.entries
            .iter()
            .filter(|(_, e)| match e {
                Entry::Put { value, .. } => value.windows(needle.len()).any(|w| w == needle),
                Entry::Tombstone { .. } => false,
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(seq: u64, v: &[u8]) -> Entry {
        Entry::Put {
            seq,
            unit_id: seq,
            value: v.to_vec(),
        }
    }

    fn ts(seq: u64) -> Entry {
        Entry::Tombstone { seq, unit_id: seq }
    }

    #[test]
    fn build_get_range() {
        let run = SsTable::build(vec![
            (1, put(1, b"a")),
            (5, put(2, b"b")),
            (9, put(3, b"c")),
        ]);
        assert!(run.get(5).is_some());
        assert!(run.get(4).is_none());
        let r: Vec<u64> = run.range(2, 8).map(|(k, _)| k).collect();
        assert_eq!(r, vec![5]);
        assert_eq!(run.len(), 3);
    }

    #[test]
    fn bloom_no_false_negative() {
        let run = SsTable::build((0..100u64).map(|k| (k, put(k, b"v"))).collect());
        for k in 0..100u64 {
            assert!(run.might_contain(k));
        }
    }

    #[test]
    fn merge_keeps_newest() {
        let old = SsTable::build(vec![(1, put(1, b"old")), (2, put(2, b"keep"))]);
        let new = SsTable::build(vec![(1, put(5, b"new"))]);
        let merged = SsTable::merge(&[old, new], false);
        match merged.get(1).unwrap() {
            Entry::Put { value, .. } => assert_eq!(value, b"new"),
            _ => panic!(),
        }
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn merge_drops_tombstones_at_last_level_only() {
        let run = SsTable::build(vec![(1, ts(9)), (2, put(2, b"live"))]);
        let kept = SsTable::merge(std::slice::from_ref(&run), false);
        assert_eq!(kept.tombstones(), 1);
        let dropped = SsTable::merge(&[run], true);
        assert_eq!(dropped.tombstones(), 0);
        assert_eq!(dropped.len(), 1);
    }

    #[test]
    fn tombstone_shadows_older_put_in_merge() {
        let old = SsTable::build(vec![(1, put(1, b"pii"))]);
        let newer = SsTable::build(vec![(1, ts(5))]);
        let merged = SsTable::merge(&[old, newer], true);
        assert!(merged.get(1).is_none(), "put and tombstone both gone");
        assert_eq!(merged.scan_physical(b"pii"), 0);
    }

    #[test]
    fn without_unit_filters() {
        let run = SsTable::build(vec![(1, put(100, b"a")), (2, put(200, b"b"))]);
        let (clean, removed) = run.without_unit(100);
        assert_eq!(removed, 1);
        assert!(clean.get(1).is_none());
        assert!(clean.get(2).is_some());
    }

    #[test]
    fn scan_physical_counts_matches() {
        let run = SsTable::build(vec![
            (1, put(1, b"xxnedleyy")),
            (2, put(2, b"needle-here")),
            (3, ts(3)),
        ]);
        assert_eq!(run.scan_physical(b"needle"), 1);
    }
}
