//! LSM-tree storage engine with tombstone deletes (Cassandra-style).
//!
//! The paper's introduction motivates Data-CASE with exactly this engine
//! family: "adopting logical deletes as in Cassandra — inserts a tombstone
//! when data is deleted — can be efficient", yet "using delete markers like
//! tombstones in LSM trees may lead to data being, illegally, physically
//! retained for a long duration" (Lethe, \[62\]). This module reproduces the
//! mechanics: deletes are O(1) tombstone writes; shadowed versions survive
//! in older runs until compaction; the forensic scanner finds them.

pub mod bloom;
pub mod memtable;
pub mod sstable;

use std::sync::Arc;

use datacase_sim::fault::{CrashPoint, FaultInjector};
use datacase_sim::{Meter, SimClock};

pub use memtable::{Entry, Memtable};
pub use sstable::SsTable;

/// LSM engine configuration.
#[derive(Clone, Debug)]
pub struct LsmConfig {
    /// Flush the memtable when it reaches this many bytes.
    pub memtable_bytes: usize,
    /// Compact a level when it accumulates this many runs.
    pub runs_per_level: usize,
    /// Crash-injection plane shared with the engine (chaos harness).
    pub fault: FaultInjector,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_bytes: 64 * 1024,
            runs_per_level: 4,
            fault: FaultInjector::disabled(),
        }
    }
}

/// The tree's durable run set: what survives a crash.
///
/// The manifest is the LSM analogue of the heap's retained WAL — a
/// consistent snapshot of every on-disk run plus the highest sequence
/// number they contain. It is committed by whole-value assignment only
/// *after* a flush, compaction, or unit purge completes, so a crash in
/// the middle of any of those leaves the manifest pointing at the
/// previous, fully-written run set (in-flight merge outputs are simply
/// garbage, exactly like half-written SSTable files under a real
/// manifest). Memtable contents are volatile and are *not* covered —
/// recovering them is the engine layer's job (WAL-style replay).
///
/// Runs are shared with the live tree via `Arc`, so committing a
/// manifest never copies run data.
#[derive(Clone, Debug, Default)]
pub struct RunManifest {
    /// The levelled run set; same shape as the live tree's levels.
    pub levels: Vec<Vec<Arc<SsTable>>>,
    /// Highest sequence number appearing in any manifest run.
    pub seq: u64,
}

impl RunManifest {
    /// Total number of runs across levels.
    pub fn runs(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

/// LSM statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct LsmStats {
    /// Total runs across levels.
    pub runs: usize,
    /// Entries in the memtable.
    pub memtable_entries: usize,
    /// Total entries across runs (including shadowed + tombstones).
    pub run_entries: usize,
    /// Live tombstones across runs.
    pub tombstones: usize,
    /// Total bytes across runs.
    pub run_bytes: u64,
}

/// A tiered LSM tree: memtable + levels of sorted runs.
pub struct LsmTree {
    config: LsmConfig,
    memtable: Memtable,
    /// levels[0] holds the newest runs; within a level, later = newer.
    levels: Vec<Vec<Arc<SsTable>>>,
    seq: u64,
    /// Last committed durable run set (see [`RunManifest`]).
    durable: RunManifest,
    clock: SimClock,
    meter: Arc<Meter>,
}

impl std::fmt::Debug for LsmTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmTree")
            .field("levels", &self.levels.len())
            .field("runs", &self.stats().runs)
            .finish()
    }
}

impl LsmTree {
    /// An empty tree.
    pub fn new(config: LsmConfig, clock: SimClock, meter: Arc<Meter>) -> LsmTree {
        LsmTree {
            config,
            memtable: Memtable::new(),
            levels: vec![Vec::new()],
            seq: 0,
            durable: RunManifest::default(),
            clock,
            meter,
        }
    }

    /// Rebuild a tree from a durable [`RunManifest`] (crash recovery):
    /// the manifest's runs become the levels, the memtable starts empty,
    /// and sequence numbers continue from the highest durable one. The
    /// LSM counterpart of [`HeapDb::recover`](crate::heap::HeapDb::recover).
    pub fn recover(
        manifest: RunManifest,
        config: LsmConfig,
        clock: SimClock,
        meter: Arc<Meter>,
    ) -> LsmTree {
        let mut levels = manifest.levels.clone();
        if levels.is_empty() {
            levels.push(Vec::new());
        }
        LsmTree {
            config,
            memtable: Memtable::new(),
            levels,
            seq: manifest.seq,
            durable: manifest,
            clock,
            meter,
        }
    }

    /// The last committed durable run set. Cheap: runs are `Arc`-shared.
    pub fn manifest(&self) -> RunManifest {
        self.durable.clone()
    }

    /// Commit the current run set as durable. Called only at the *end* of
    /// a flush / compaction / purge, so an injected crash inside those
    /// operations leaves the previous manifest in force.
    fn commit_manifest(&mut self) {
        self.durable = RunManifest {
            levels: self.levels.clone(),
            seq: self.seq,
        };
    }

    /// A tree with default config on a fresh clock/meter.
    pub fn default_single() -> LsmTree {
        LsmTree::new(
            LsmConfig::default(),
            SimClock::commodity(),
            Arc::new(Meter::new()),
        )
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// PUT a key/value.
    pub fn put(&mut self, key: u64, unit_id: u64, value: &[u8]) {
        let seq = self.next_seq();
        let cost = self.clock.model().tuple_cpu + self.clock.model().log_append;
        self.clock.charge_nanos(cost);
        self.memtable.put(key, seq, unit_id, value.to_vec());
        self.maybe_flush();
    }

    /// DELETE: insert a tombstone (O(1) — the whole point, and the hazard).
    pub fn delete(&mut self, key: u64, unit_id: u64) {
        let seq = self.next_seq();
        let cost = self.clock.model().tuple_cpu + self.clock.model().log_append;
        self.clock.charge_nanos(cost);
        self.memtable.delete(key, seq, unit_id);
        self.maybe_flush();
    }

    /// GET: memtable first, then runs newest → oldest, bloom-gated.
    pub fn get(&mut self, key: u64) -> Option<Vec<u8>> {
        match self.entry(key)? {
            Entry::Put { value, .. } => Some(value),
            Entry::Tombstone { .. } => None,
        }
    }

    /// The newest physical entry for `key` — a value version *or* a
    /// tombstone — at point-read cost. Callers that need the unit id or
    /// must distinguish "tombstoned" from "never written" use this.
    pub fn entry(&mut self, key: u64) -> Option<Entry> {
        let model = self.clock.model().clone();
        self.clock.charge_nanos(model.tuple_cpu);
        if let Some(e) = self.memtable.get(key) {
            return Some(e.clone());
        }
        for level in &self.levels {
            for run in level.iter().rev() {
                self.clock.charge_nanos(model.bloom_probe);
                Meter::bump(self.meter.bloom_probes_alias(), 1);
                if !run.might_contain(key) {
                    continue;
                }
                self.clock
                    .charge_nanos(model.page_read_cached + model.tuple_cpu);
                Meter::bump(&self.meter.pages_read_cached, 1);
                if let Some(e) = run.get(key) {
                    return Some(e.clone());
                }
            }
        }
        None
    }

    /// Read-your-writes check used by callers that need key existence.
    pub fn contains(&mut self, key: u64) -> bool {
        self.get(key).is_some()
    }

    fn maybe_flush(&mut self) {
        if self.memtable.bytes() >= self.config.memtable_bytes {
            self.flush();
        }
    }

    /// Flush the memtable into a new level-0 run.
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let entries = self.memtable.drain();
        let bytes: u64 = entries.iter().map(|(_, e)| e.size() as u64).sum();
        self.clock.charge_nanos(
            self.clock.model().page_write_disk + self.clock.model().compaction_per_byte * bytes,
        );
        Meter::bump(&self.meter.pages_written, 1);
        let run = SsTable::build(entries);
        self.levels[0].push(Arc::new(run));
        // The new run is durable before any compaction it triggers: a
        // crash mid-compaction must not lose the flushed data.
        self.commit_manifest();
        self.maybe_compact();
    }

    fn maybe_compact(&mut self) {
        let mut level = 0;
        while level < self.levels.len() {
            if self.levels[level].len() >= self.config.runs_per_level {
                self.compact_level(level);
            }
            level += 1;
        }
    }

    /// Merge all runs of `level` into one run in `level + 1`.
    ///
    /// Tombstones are dropped only when merging into the **last** level
    /// (nothing older can hide under them) — the rule whose consequence is
    /// long physical retention of "deleted" data.
    fn compact_level(&mut self, level: usize) {
        self.config.fault.hit(CrashPoint::Compaction);
        let runs: Vec<Arc<SsTable>> = std::mem::take(&mut self.levels[level]);
        if self.levels.len() == level + 1 {
            self.levels.push(Vec::new());
        }
        let into_last = self.levels.len() == level + 2 && self.levels[level + 1].is_empty();
        let merged = SsTable::merge(&runs, into_last);
        let bytes = merged.bytes();
        self.clock
            .charge_nanos(self.clock.model().compaction_per_byte * bytes);
        Meter::bump(&self.meter.compaction_bytes, bytes);
        self.levels[level + 1].push(Arc::new(merged));
        self.commit_manifest();
    }

    /// Force a full compaction: flush, then merge everything into one run,
    /// dropping tombstones and shadowed versions — the LSM grounding of
    /// physical deletion.
    pub fn compact_all(&mut self) {
        self.flush();
        self.config.fault.hit(CrashPoint::Compaction);
        let all: Vec<Arc<SsTable>> = self.levels.drain(..).flatten().collect();
        if all.is_empty() {
            self.levels.push(Vec::new());
            self.commit_manifest();
            return;
        }
        let merged = SsTable::merge(&all, true);
        let bytes = merged.bytes();
        self.clock
            .charge_nanos(self.clock.model().compaction_per_byte * bytes);
        Meter::bump(&self.meter.compaction_bytes, bytes);
        self.levels.clear();
        self.levels.push(Vec::new());
        self.levels.push(vec![Arc::new(merged)]);
        self.commit_manifest();
    }

    /// Scan every physical byte of every run for `needle` — the forensic
    /// view. Finds shadowed versions and payloads under tombstones.
    pub fn scan_physical(&self, needle: &[u8]) -> usize {
        self.levels
            .iter()
            .flatten()
            .map(|run| run.scan_physical(needle))
            .sum::<usize>()
            + self.memtable.scan_physical(needle)
    }

    /// Engine statistics.
    pub fn stats(&self) -> LsmStats {
        let mut s = LsmStats {
            memtable_entries: self.memtable.len(),
            ..LsmStats::default()
        };
        for run in self.levels.iter().flatten() {
            s.runs += 1;
            s.run_entries += run.len();
            s.tombstones += run.tombstones();
            s.run_bytes += run.bytes();
        }
        s
    }

    /// Range scan of live keys in `[lo, hi]`, merging levels.
    pub fn range(&mut self, lo: u64, hi: u64) -> Vec<(u64, Vec<u8>)> {
        self.range_units(lo, hi)
            .into_iter()
            .map(|(k, _, v)| (k, v))
            .collect()
    }

    /// Range scan of live keys in `[lo, hi]` carrying each entry's unit id
    /// (the compliance layer scans by unit).
    pub fn range_units(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64, Vec<u8>)> {
        use std::collections::BTreeMap;
        // (seq, unit, entry) per key; keep the newest.
        type Best = (u64, u64, Option<Vec<u8>>);
        let mut best: BTreeMap<u64, Best> = BTreeMap::new();
        let mut consider = |key: u64, seq: u64, unit: u64, val: Option<Vec<u8>>| {
            let slot = best.entry(key).or_insert((0, 0, None));
            if seq >= slot.0 {
                *slot = (seq, unit, val);
            }
        };
        for (k, e) in self.memtable.range(lo, hi) {
            match e {
                Entry::Put {
                    seq,
                    unit_id,
                    value,
                } => consider(k, *seq, *unit_id, Some(value.clone())),
                Entry::Tombstone { seq, unit_id } => consider(k, *seq, *unit_id, None),
            }
        }
        let model = self.clock.model().clone();
        for level in &self.levels {
            for run in level {
                self.clock.charge_nanos(model.page_read_cached);
                for (k, e) in run.range(lo, hi) {
                    match e {
                        Entry::Put {
                            seq,
                            unit_id,
                            value,
                        } => consider(k, *seq, *unit_id, Some(value.clone())),
                        Entry::Tombstone { seq, unit_id } => consider(k, *seq, *unit_id, None),
                    }
                }
            }
        }
        best.into_iter()
            .filter_map(|(k, (_, u, v))| v.map(|v| (k, u, v)))
            .collect()
    }

    /// Rewrite every run dropping any entry of `unit` (the LSM
    /// "sanitisation" for permanent deletion). Expensive: full rewrite.
    pub fn purge_unit(&mut self, unit_id: u64) -> usize {
        self.flush();
        self.config.fault.hit(CrashPoint::PurgeUnit);
        let mut purged = 0;
        for level in &mut self.levels {
            for run in level.iter_mut() {
                let (new_run, removed) = run.without_unit(unit_id);
                purged += removed;
                *run = Arc::new(new_run);
            }
        }
        let total_bytes: u64 = self.levels.iter().flatten().map(|r| r.bytes()).sum();
        self.clock
            .charge_nanos(self.clock.model().compaction_per_byte * total_bytes);
        self.commit_manifest();
        purged
    }

    /// Shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }
}

/// Bloom-probe alias: the shared [`Meter`] has no dedicated field for bloom
/// probes, so they are counted as index probes.
trait BloomAlias {
    fn bloom_probes_alias(&self) -> &std::sync::atomic::AtomicU64;
}

impl BloomAlias for Meter {
    fn bloom_probes_alias(&self) -> &std::sync::atomic::AtomicU64 {
        &self.index_probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> LsmTree {
        LsmTree::default_single()
    }

    #[test]
    fn put_get_roundtrip() {
        let mut t = mk();
        t.put(1, 1, b"one");
        t.put(2, 2, b"two");
        assert_eq!(t.get(1).unwrap(), b"one");
        assert_eq!(t.get(2).unwrap(), b"two");
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn tombstone_hides_value() {
        let mut t = mk();
        t.put(1, 1, b"visible");
        t.delete(1, 1);
        assert_eq!(t.get(1), None);
    }

    #[test]
    fn newer_version_wins_across_flushes() {
        let mut t = mk();
        t.put(1, 1, b"old");
        t.flush();
        t.put(1, 1, b"new");
        assert_eq!(t.get(1).unwrap(), b"new");
        t.flush();
        assert_eq!(t.get(1).unwrap(), b"new");
    }

    #[test]
    fn deleted_data_physically_retained_until_compaction() {
        let mut t = mk();
        t.put(1, 1, b"retained-pii");
        t.flush();
        t.delete(1, 1);
        t.flush();
        assert_eq!(t.get(1), None, "logically deleted");
        assert!(
            t.scan_physical(b"retained-pii") > 0,
            "Lethe's observation: bytes persist under the tombstone"
        );
        t.compact_all();
        assert_eq!(
            t.scan_physical(b"retained-pii"),
            0,
            "full compaction finally drops the shadowed value"
        );
        assert_eq!(t.get(1), None);
    }

    #[test]
    fn tombstones_dropped_only_at_last_level() {
        let mut t = mk();
        t.put(1, 1, b"x");
        t.delete(1, 1);
        t.flush();
        let stats_before = t.stats();
        assert!(stats_before.tombstones > 0);
        t.compact_all();
        assert_eq!(t.stats().tombstones, 0);
    }

    #[test]
    fn automatic_flush_and_compaction_by_size() {
        let mut t = LsmTree::new(
            LsmConfig {
                memtable_bytes: 1024,
                runs_per_level: 2,
                ..LsmConfig::default()
            },
            SimClock::commodity(),
            Arc::new(Meter::new()),
        );
        for i in 0..500u64 {
            t.put(i, i, &[0xAB; 64]);
        }
        let s = t.stats();
        assert!(s.runs >= 1, "flushes happened");
        for i in (0..500u64).step_by(83) {
            assert!(t.get(i).is_some(), "key {i}");
        }
    }

    #[test]
    fn range_merges_levels_and_respects_tombstones() {
        let mut t = mk();
        for i in 0..20u64 {
            t.put(i, i, format!("v{i}").as_bytes());
        }
        t.flush();
        t.delete(5, 5);
        t.put(7, 7, b"v7-new");
        let r = t.range(3, 8);
        let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![3, 4, 6, 7, 8]);
        let v7 = &r.iter().find(|(k, _)| *k == 7).unwrap().1;
        assert_eq!(v7, b"v7-new");
    }

    #[test]
    fn purge_unit_removes_all_traces() {
        let mut t = mk();
        t.put(1, 100, b"unit-100-pii");
        t.put(2, 200, b"unit-200-data");
        t.flush();
        t.delete(1, 100);
        let purged = t.purge_unit(100);
        assert!(purged > 0);
        assert_eq!(t.scan_physical(b"unit-100-pii"), 0);
        assert!(t.scan_physical(b"unit-200-data") > 0, "other units intact");
        assert_eq!(t.get(2).unwrap(), b"unit-200-data");
    }

    #[test]
    fn manifest_recovery_restores_flushed_state() {
        let mut t = mk();
        t.put(1, 1, b"durable-one");
        t.put(2, 2, b"durable-two");
        t.flush();
        t.delete(1, 1);
        t.flush();
        t.put(3, 3, b"volatile-unflushed"); // memtable only: lost on crash
        let manifest = t.manifest();
        assert!(manifest.runs() > 0);
        let mut r = LsmTree::recover(
            manifest,
            LsmConfig::default(),
            SimClock::commodity(),
            Arc::new(Meter::new()),
        );
        assert_eq!(r.get(1), None, "flushed tombstone survives");
        assert_eq!(r.get(2).unwrap(), b"durable-two");
        assert_eq!(r.get(3), None, "memtable contents are volatile");
        // Sequence numbers continue above every durable entry.
        r.put(2, 2, b"post-recovery");
        assert_eq!(r.get(2).unwrap(), b"post-recovery");
    }

    #[test]
    fn crash_mid_compaction_leaves_precompaction_manifest() {
        let fault = FaultInjector::armed(CrashPoint::Compaction, 1);
        let mut t = LsmTree::new(
            LsmConfig {
                memtable_bytes: 256,
                runs_per_level: 2,
                fault: fault.clone(),
            },
            SimClock::commodity(),
            Arc::new(Meter::new()),
        );
        let crash = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for i in 0..200u64 {
                t.put(i, i, format!("compaction-victim-{i:03}").as_bytes());
            }
        }))
        .expect_err("small runs_per_level must trigger a compaction");
        assert!(crash
            .downcast_ref::<datacase_sim::fault::CrashSignal>()
            .is_some());
        assert!(fault.fired());
        // The manifest still holds the pre-compaction runs: every key
        // flushed before the crash is readable after recovery.
        let manifest = t.manifest();
        assert!(manifest.runs() >= 2, "uncompacted runs survive");
        let mut r = LsmTree::recover(
            manifest,
            LsmConfig::default(),
            SimClock::commodity(),
            Arc::new(Meter::new()),
        );
        let recovered = r.range(0, 200).len();
        assert!(recovered > 0, "flushed data survives the crash");
        for (k, v) in r.range(0, 200) {
            assert_eq!(v, format!("compaction-victim-{k:03}").as_bytes());
        }
    }

    #[test]
    fn purge_survives_manifest_recovery() {
        let mut t = mk();
        t.put(1, 100, b"purge-me-pii");
        t.put(2, 200, b"keep-me");
        t.flush();
        t.purge_unit(100);
        let mut r = LsmTree::recover(
            t.manifest(),
            LsmConfig::default(),
            SimClock::commodity(),
            Arc::new(Meter::new()),
        );
        assert_eq!(
            r.scan_physical(b"purge-me-pii"),
            0,
            "purged bytes must not resurrect through recovery"
        );
        assert_eq!(r.get(2).unwrap(), b"keep-me");
    }

    #[test]
    fn deletes_are_cheap_compared_to_heap_vacuum_full() {
        // Sanity on the cost asymmetry the paper's intro cites.
        let t0;
        {
            let mut t = mk();
            for i in 0..100u64 {
                t.put(i, i, &[1u8; 100]);
            }
            let start = t.clock().now();
            for i in 0..100u64 {
                t.delete(i, i);
            }
            t0 = t.clock().now().since(start);
        }
        assert!(t0.as_millis_f64() < 10.0, "tombstone deletes are fast");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        #[test]
        fn lsm_matches_reference_map(
            ops in proptest::collection::vec(
                (0u64..30, proptest::bool::ANY, proptest::collection::vec(1u8..=255, 1..30)), 1..200)
        ) {
            let mut t = LsmTree::new(
                LsmConfig { memtable_bytes: 512, runs_per_level: 2, ..LsmConfig::default() },
                SimClock::commodity(),
                Arc::new(Meter::new()),
            );
            let mut model: std::collections::HashMap<u64, Vec<u8>> = Default::default();
            for (key, is_put, payload) in ops {
                if is_put {
                    t.put(key, key, &payload);
                    model.insert(key, payload);
                } else {
                    t.delete(key, key);
                    model.remove(&key);
                }
            }
            for key in 0u64..30 {
                proptest::prop_assert_eq!(t.get(key), model.get(&key).cloned(), "key {}", key);
            }
            let live = t.range(0, 30);
            proptest::prop_assert_eq!(live.len(), model.len());
        }
    }
}
