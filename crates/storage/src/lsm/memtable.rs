//! The LSM write buffer: an ordered in-memory map of the newest entries.

use std::collections::BTreeMap;

/// An LSM entry: a value version or a tombstone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Entry {
    /// A written value.
    Put {
        /// Monotone sequence number (newer wins).
        seq: u64,
        /// Data-CASE unit id.
        unit_id: u64,
        /// The payload.
        value: Vec<u8>,
    },
    /// A delete marker.
    Tombstone {
        /// Monotone sequence number.
        seq: u64,
        /// Data-CASE unit id.
        unit_id: u64,
    },
}

impl Entry {
    /// The entry's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            Entry::Put { seq, .. } | Entry::Tombstone { seq, .. } => *seq,
        }
    }

    /// The unit the entry belongs to.
    pub fn unit_id(&self) -> u64 {
        match self {
            Entry::Put { unit_id, .. } | Entry::Tombstone { unit_id, .. } => *unit_id,
        }
    }

    /// Approximate byte size.
    pub fn size(&self) -> usize {
        match self {
            Entry::Put { value, .. } => 24 + value.len(),
            Entry::Tombstone { .. } => 24,
        }
    }

    /// Is this a tombstone?
    pub fn is_tombstone(&self) -> bool {
        matches!(self, Entry::Tombstone { .. })
    }
}

/// The in-memory write buffer.
#[derive(Clone, Debug, Default)]
pub struct Memtable {
    entries: BTreeMap<u64, Entry>,
    bytes: usize,
}

impl Memtable {
    /// An empty memtable.
    pub fn new() -> Memtable {
        Memtable::default()
    }

    /// Record a put.
    pub fn put(&mut self, key: u64, seq: u64, unit_id: u64, value: Vec<u8>) {
        let e = Entry::Put {
            seq,
            unit_id,
            value,
        };
        self.bytes += e.size();
        if let Some(old) = self.entries.insert(key, e) {
            self.bytes -= old.size();
        }
    }

    /// Record a tombstone.
    pub fn delete(&mut self, key: u64, seq: u64, unit_id: u64) {
        let e = Entry::Tombstone { seq, unit_id };
        self.bytes += e.size();
        if let Some(old) = self.entries.insert(key, e) {
            self.bytes -= old.size();
        }
    }

    /// Latest entry for `key`.
    pub fn get(&self, key: u64) -> Option<&Entry> {
        self.entries.get(&key)
    }

    /// Entries with `lo <= key <= hi`.
    pub fn range(&self, lo: u64, hi: u64) -> impl Iterator<Item = (u64, &Entry)> {
        self.entries.range(lo..=hi).map(|(k, e)| (*k, e))
    }

    /// Number of buffered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate buffered bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Take all entries (sorted by key) and reset.
    pub fn drain(&mut self) -> Vec<(u64, Entry)> {
        self.bytes = 0;
        std::mem::take(&mut self.entries).into_iter().collect()
    }

    /// Forensic byte scan over buffered values.
    pub fn scan_physical(&self, needle: &[u8]) -> usize {
        if needle.is_empty() {
            return 0;
        }
        self.entries
            .values()
            .filter(|e| match e {
                Entry::Put { value, .. } => value.windows(needle.len()).any(|w| w == needle),
                Entry::Tombstone { .. } => false,
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_overwrite() {
        let mut m = Memtable::new();
        m.put(1, 1, 100, b"a".to_vec());
        m.put(1, 2, 100, b"bb".to_vec());
        match m.get(1).unwrap() {
            Entry::Put { seq, value, .. } => {
                assert_eq!(*seq, 2);
                assert_eq!(value, b"bb");
            }
            _ => panic!("expected put"),
        }
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tombstone_replaces_put() {
        let mut m = Memtable::new();
        m.put(1, 1, 100, b"x".to_vec());
        m.delete(1, 2, 100);
        assert!(m.get(1).unwrap().is_tombstone());
    }

    #[test]
    fn bytes_accounting() {
        let mut m = Memtable::new();
        m.put(1, 1, 100, vec![0; 100]);
        assert_eq!(m.bytes(), 124);
        m.put(1, 2, 100, vec![0; 10]);
        assert_eq!(m.bytes(), 34);
        m.drain();
        assert_eq!(m.bytes(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn drain_is_sorted() {
        let mut m = Memtable::new();
        m.put(5, 1, 0, vec![]);
        m.put(1, 2, 0, vec![]);
        m.put(3, 3, 0, vec![]);
        let d = m.drain();
        let keys: Vec<u64> = d.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn scan_physical_finds_values() {
        let mut m = Memtable::new();
        m.put(1, 1, 0, b"needle-in-mem".to_vec());
        assert_eq!(m.scan_physical(b"needle"), 1);
        assert_eq!(m.scan_physical(b"absent"), 0);
        assert_eq!(m.scan_physical(b""), 0);
    }
}
