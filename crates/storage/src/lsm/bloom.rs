//! A Bloom filter for SSTable key membership.

/// Fixed-k Bloom filter over u64 keys.
#[derive(Clone, Debug)]
pub struct Bloom {
    bits: Vec<u64>,
    nbits: usize,
    k: u32,
}

fn mix(mut x: u64, salt: u64) -> u64 {
    x ^= salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Bloom {
    /// A filter sized for `n` keys at ~10 bits/key, k=7 (≈1% FPR).
    pub fn for_items(n: usize) -> Bloom {
        let nbits = (n.max(1) * 10).next_power_of_two();
        Bloom {
            bits: vec![0u64; nbits / 64 + 1],
            nbits,
            k: 7,
        }
    }

    /// Insert a key.
    pub fn insert(&mut self, key: u64) {
        for i in 0..self.k {
            let bit = (mix(key, i as u64) as usize) % self.nbits;
            self.bits[bit / 64] |= 1 << (bit % 64);
        }
    }

    /// Possibly-contains check (no false negatives).
    pub fn might_contain(&self, key: u64) -> bool {
        (0..self.k).all(|i| {
            let bit = (mix(key, i as u64) as usize) % self.nbits;
            self.bits[bit / 64] & (1 << (bit % 64)) != 0
        })
    }

    /// Filter size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = Bloom::for_items(1000);
        for i in 0..1000u64 {
            b.insert(i * 7);
        }
        for i in 0..1000u64 {
            assert!(b.might_contain(i * 7));
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut b = Bloom::for_items(1000);
        for i in 0..1000u64 {
            b.insert(i);
        }
        let fp = (1000u64..21000).filter(|&k| b.might_contain(k)).count();
        let rate = fp as f64 / 20_000.0;
        assert!(rate < 0.05, "FPR {rate}");
    }

    #[test]
    fn empty_filter_contains_nothing_much() {
        let b = Bloom::for_items(10);
        let hits = (0..1000u64).filter(|&k| b.might_contain(k)).count();
        assert_eq!(hits, 0);
    }
}
