//! Replicated storage with copy tracking.
//!
//! The paper's introduction: "If erasure means removing the data not just
//! from the primary location, but removing it completely (from all
//! locations in disk and memory), a technique will have to be built to
//! track the copies and delete all of them." This module is that
//! technique in miniature: a primary heap plus N replica heaps, a copy
//! tracker recording where every key materialised, and erasure APIs that
//! either hit only the primary (the naive, non-compliant behaviour) or
//! chase every tracked copy.

use std::collections::HashMap;
use std::sync::Arc;

use datacase_sim::{Meter, SimClock};

use crate::error::Result;
use crate::forensic::{scan_heap, ForensicFindings};
use crate::heap::{HeapConfig, HeapDb};

/// A primary heap with `n` full replicas and a copy tracker.
pub struct ReplicatedHeap {
    nodes: Vec<HeapDb>,
    /// key → node indexes holding a copy (the tracked copies).
    copies: HashMap<u64, Vec<usize>>,
    clock: SimClock,
}

impl std::fmt::Debug for ReplicatedHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedHeap")
            .field("nodes", &self.nodes.len())
            .field("tracked_keys", &self.copies.len())
            .finish()
    }
}

impl ReplicatedHeap {
    /// A cluster of `replicas + 1` nodes sharing one simulated clock (the
    /// cluster completes when the slowest write completes).
    pub fn new(replicas: usize, config: HeapConfig) -> ReplicatedHeap {
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        let nodes = (0..=replicas)
            .map(|_| HeapDb::new(config.clone(), clock.clone(), meter.clone()))
            .collect();
        ReplicatedHeap {
            nodes,
            copies: HashMap::new(),
            clock,
        }
    }

    /// Number of nodes (primary + replicas).
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Replicated insert: the write lands on every node; the tracker
    /// records each copy.
    pub fn insert(&mut self, key: u64, unit_id: u64, payload: &[u8]) -> Result<()> {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.insert(key, unit_id, payload)?;
            self.copies.entry(key).or_default().push(i);
        }
        Ok(())
    }

    /// Read from the primary.
    pub fn read(&mut self, key: u64) -> Option<Vec<u8>> {
        self.nodes[0].read(key, false)
    }

    /// The **naive erase**: delete + vacuum on the primary only — what a
    /// system unaware of its own replication does. Replica copies survive.
    pub fn erase_primary_only(&mut self, key: u64) -> Result<()> {
        self.nodes[0].delete(key)?;
        self.nodes[0].vacuum();
        Ok(())
    }

    /// The **tracked erase**: consult the copy tracker and erase every
    /// copy on every node, then forget the key. This is "removing it
    /// completely (from all locations)".
    pub fn erase_all_copies(&mut self, key: u64) -> Result<usize> {
        let holders = self.copies.remove(&key).unwrap_or_default();
        let mut erased = 0;
        let mut seen = std::collections::HashSet::new();
        for i in holders {
            if !seen.insert(i) {
                continue;
            }
            if self.nodes[i].delete(key).is_ok() {
                self.nodes[i].vacuum();
                erased += 1;
            }
        }
        Ok(erased)
    }

    /// Cluster-wide forensic scan: residuals anywhere on any node.
    pub fn forensic(&mut self, needle: &[u8]) -> Vec<(usize, ForensicFindings)> {
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.checkpoint();
            let f = scan_heap(node, needle);
            if f.any() {
                out.push((i, f));
            }
        }
        out
    }

    /// How many nodes still hold a *readable* copy of `key`.
    pub fn readable_copies(&mut self, key: u64) -> usize {
        self.nodes
            .iter_mut()
            .filter_map(|n| n.read(key, false))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ReplicatedHeap {
        let mut r = ReplicatedHeap::new(2, HeapConfig::default());
        r.insert(1, 100, b"REPLICATED-PII").unwrap();
        r.insert(2, 200, b"other-record").unwrap();
        r
    }

    #[test]
    fn writes_reach_every_node() {
        let mut r = cluster();
        assert_eq!(r.nodes(), 3);
        assert_eq!(r.readable_copies(1), 3);
        assert_eq!(r.read(1).unwrap(), b"REPLICATED-PII");
    }

    #[test]
    fn primary_only_erase_leaves_replica_copies() {
        let mut r = cluster();
        r.erase_primary_only(1).unwrap();
        assert_eq!(r.read(1), None, "primary no longer serves it");
        assert_eq!(
            r.readable_copies(1),
            2,
            "replicas still hold readable copies — the intro's hazard"
        );
        let residuals = r.forensic(b"REPLICATED-PII");
        assert!(
            residuals.iter().any(|(node, _)| *node != 0),
            "forensics finds the replica copies"
        );
    }

    #[test]
    fn tracked_erase_removes_every_copy() {
        let mut r = cluster();
        let erased = r.erase_all_copies(1).unwrap();
        assert_eq!(erased, 3);
        assert_eq!(r.readable_copies(1), 0);
        // File-level residuals gone everywhere (WAL retention remains, as
        // on a single node — that is the log hazard, not the copy hazard).
        for (node, f) in r.forensic(b"REPLICATED-PII") {
            assert!(
                f.file_pages.is_empty(),
                "node {node} still has page residuals: {}",
                f.describe()
            );
        }
        // Unrelated data is untouched.
        assert_eq!(r.readable_copies(2), 3);
    }

    #[test]
    fn tracked_erase_is_idempotent() {
        let mut r = cluster();
        assert_eq!(r.erase_all_copies(1).unwrap(), 3);
        assert_eq!(r.erase_all_copies(1).unwrap(), 0, "tracker already empty");
    }

    #[test]
    fn replication_costs_scale_with_nodes() {
        let mut small = ReplicatedHeap::new(0, HeapConfig::default());
        let t0 = small.clock().now();
        small.insert(1, 1, &[7u8; 100]).unwrap();
        let single = small.clock().now().since(t0);

        let mut big = ReplicatedHeap::new(4, HeapConfig::default());
        let t1 = big.clock().now();
        big.insert(1, 1, &[7u8; 100]).unwrap();
        let five = big.clock().now().since(t1);
        assert!(five.0 > 4 * single.0, "5 nodes write ≥ 5x the work");
    }
}
