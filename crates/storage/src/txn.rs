//! Transactions, snapshots and MVCC visibility.
//!
//! The workloads execute operations sequentially (one statement = one
//! transaction, PostgreSQL autocommit style), so the manager is a simple
//! monotone xid allocator: every xid below the current one is committed.
//! Visibility still follows the real MVCC rule — a tuple version is
//! visible to a snapshot iff it was created by a committed transaction
//! before the snapshot and not deleted by one.

use crate::tuple::TupleHeader;

/// A snapshot: everything with xid < `horizon` is committed and visible.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Snapshot {
    /// Exclusive upper bound of visible xids.
    pub horizon: u64,
}

impl Snapshot {
    /// Is the tuple version visible to this snapshot (ignoring flags)?
    pub fn visible(&self, h: &TupleHeader) -> bool {
        if h.xmin >= self.horizon {
            return false; // created after the snapshot
        }
        if h.xmax != 0 && h.xmax < self.horizon {
            return false; // deleted before the snapshot
        }
        true
    }

    /// Is the version *dead to everyone* at this horizon (vacuumable)?
    pub fn dead_for_all(&self, h: &TupleHeader) -> bool {
        h.xmax != 0 && h.xmax < self.horizon
    }
}

/// Monotone transaction-id allocator.
#[derive(Clone, Debug)]
pub struct TxnManager {
    next_xid: u64,
}

impl Default for TxnManager {
    fn default() -> Self {
        TxnManager::new()
    }
}

impl TxnManager {
    /// A manager starting at xid 1 (xid 0 is reserved for "never deleted").
    pub fn new() -> TxnManager {
        TxnManager { next_xid: 1 }
    }

    /// Begin a transaction, returning its xid.
    pub fn begin(&mut self) -> u64 {
        let xid = self.next_xid;
        self.next_xid += 1;
        xid
    }

    /// A snapshot seeing all transactions begun so far.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            horizon: self.next_xid,
        }
    }

    /// The vacuum horizon: with sequential execution, everything allocated
    /// so far is committed, so any version with `xmax < horizon` can go.
    pub fn vacuum_horizon(&self) -> Snapshot {
        self.snapshot()
    }

    /// The most recently allocated xid (0 if none yet).
    pub fn current(&self) -> u64 {
        self.next_xid - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr(xmin: u64, xmax: u64) -> TupleHeader {
        TupleHeader {
            xmin,
            xmax,
            unit_id: 0,
            key: 0,
            flags: 0,
        }
    }

    #[test]
    fn xids_are_monotone() {
        let mut m = TxnManager::new();
        let a = m.begin();
        let b = m.begin();
        assert!(b > a);
        assert_eq!(m.current(), b);
    }

    #[test]
    fn visibility_rules() {
        let snap = Snapshot { horizon: 10 };
        assert!(snap.visible(&hdr(5, 0)), "committed, live");
        assert!(!snap.visible(&hdr(10, 0)), "created at/after horizon");
        assert!(!snap.visible(&hdr(5, 8)), "deleted before horizon");
        assert!(
            snap.visible(&hdr(5, 12)),
            "deleted after horizon: still visible to this snapshot"
        );
    }

    #[test]
    fn dead_for_all_matches_vacuum_rule() {
        let snap = Snapshot { horizon: 10 };
        assert!(snap.dead_for_all(&hdr(1, 5)));
        assert!(!snap.dead_for_all(&hdr(1, 0)));
        assert!(!snap.dead_for_all(&hdr(1, 15)));
    }

    #[test]
    fn snapshot_advances_with_txns() {
        let mut m = TxnManager::new();
        let s1 = m.snapshot();
        let x = m.begin();
        let s2 = m.snapshot();
        assert!(!s1.visible(&hdr(x, 0)), "txn began after snapshot 1");
        assert!(s2.visible(&hdr(x, 0)), "snapshot 2 sees it");
    }
}
