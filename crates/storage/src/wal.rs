//! Write-ahead log.
//!
//! Besides its classic durability role (replayed by
//! [`crate::heap::HeapDb::recover`]), the WAL is itself a *retention
//! hazard* the paper's record-keeping discussion points at: payloads of
//! long-gone tuples persist in the log. The forensic scanner therefore
//! scans it, and the permanent-deletion plan scrubs it per unit.

use bytes::Bytes;
use datacase_sim::{Meter, SimClock};

/// One WAL record.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// A tuple insert.
    Insert {
        /// Transaction id.
        xid: u64,
        /// Record key.
        key: u64,
        /// Data-CASE unit id.
        unit_id: u64,
        /// Tuple payload (cleartext unless the engine encrypted upstream).
        payload: Bytes,
    },
    /// A tuple delete.
    Delete {
        /// Transaction id.
        xid: u64,
        /// Record key.
        key: u64,
        /// Data-CASE unit id.
        unit_id: u64,
    },
    /// A tuple update (new version).
    Update {
        /// Transaction id.
        xid: u64,
        /// Record key.
        key: u64,
        /// Data-CASE unit id.
        unit_id: u64,
        /// New payload.
        payload: Bytes,
        /// Whether the new version carries the HIDDEN flag.
        hidden: bool,
    },
    /// A vacuum ran (lazy or full).
    Vacuum {
        /// Transaction id.
        xid: u64,
        /// True for VACUUM FULL.
        full: bool,
    },
    /// Checkpoint: everything before this LSN is on disk.
    Checkpoint,
}

impl WalRecord {
    /// Payload bytes carried (for size accounting).
    pub fn payload_len(&self) -> usize {
        match self {
            WalRecord::Insert { payload, .. } | WalRecord::Update { payload, .. } => payload.len(),
            _ => 0,
        }
    }

    /// The unit the record concerns, if any.
    pub fn unit_id(&self) -> Option<u64> {
        match self {
            WalRecord::Insert { unit_id, .. }
            | WalRecord::Delete { unit_id, .. }
            | WalRecord::Update { unit_id, .. } => Some(*unit_id),
            _ => None,
        }
    }
}

/// The write-ahead log: an append-only record sequence with LSNs.
pub struct Wal {
    records: Vec<(u64, WalRecord)>,
    next_lsn: u64,
    bytes: u64,
    clock: SimClock,
    meter: std::sync::Arc<Meter>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("records", &self.records.len())
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl Wal {
    /// An empty log.
    pub fn new(clock: SimClock, meter: std::sync::Arc<Meter>) -> Wal {
        Wal {
            records: Vec::new(),
            next_lsn: 1,
            bytes: 0,
            clock,
            meter,
        }
    }

    /// Append a record, charging log cost; returns its LSN.
    pub fn append(&mut self, rec: WalRecord) -> u64 {
        let size = 32 + rec.payload_len();
        self.clock.charge(self.clock.model().log_cost(size));
        Meter::bump(&self.meter.wal_records, 1);
        self.bytes += size as u64;
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.records.push((lsn, rec));
        lsn
    }

    /// Durably flush (fsync) — charged per statement commit.
    pub fn flush(&self) {
        self.clock.charge_nanos(self.clock.model().fsync);
    }

    /// Iterate all retained records in LSN order.
    pub fn iter(&self) -> impl Iterator<Item = &(u64, WalRecord)> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total retained bytes (Table 2 metadata accounting).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// LSN of the most recent checkpoint record, if any.
    pub fn last_checkpoint(&self) -> Option<u64> {
        self.records
            .iter()
            .rev()
            .find(|(_, r)| matches!(r, WalRecord::Checkpoint))
            .map(|(lsn, _)| *lsn)
    }

    /// Drop records with LSN < `upto` (checkpoint truncation).
    pub fn truncate_before(&mut self, upto: u64) -> usize {
        let before = self.records.len();
        self.records.retain(|(lsn, _)| *lsn >= upto);
        let dropped = before - self.records.len();
        self.bytes = self
            .records
            .iter()
            .map(|(_, r)| 32 + r.payload_len() as u64)
            .sum();
        dropped
    }

    /// Scrub payloads of all records belonging to `unit` (permanent
    /// deletion's DeleteLogs step). Returns how many records were scrubbed.
    pub fn scrub_unit(&mut self, unit: u64) -> usize {
        let mut scrubbed = 0;
        for (_, rec) in &mut self.records {
            if rec.unit_id() == Some(unit) {
                match rec {
                    WalRecord::Insert { payload, .. } | WalRecord::Update { payload, .. } => {
                        let len = payload.len();
                        self.clock.charge(self.clock.model().log_cost(len));
                        *payload = Bytes::from(vec![0u8; len]);
                        scrubbed += 1;
                    }
                    _ => {
                        scrubbed += 1;
                    }
                }
            }
        }
        scrubbed
    }

    /// Scan retained payload bytes for `needle` (forensic observer).
    pub fn scan(&self, needle: &[u8]) -> Vec<u64> {
        if needle.is_empty() {
            return Vec::new();
        }
        self.records
            .iter()
            .filter(|(_, r)| match r {
                WalRecord::Insert { payload, .. } | WalRecord::Update { payload, .. } => {
                    payload.windows(needle.len()).any(|w| w == needle)
                }
                _ => false,
            })
            .map(|(lsn, _)| *lsn)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn mk() -> (Wal, SimClock) {
        let clock = SimClock::commodity();
        (Wal::new(clock.clone(), Arc::new(Meter::new())), clock)
    }

    fn ins(key: u64, payload: &[u8]) -> WalRecord {
        WalRecord::Insert {
            xid: 1,
            key,
            unit_id: key,
            payload: Bytes::copy_from_slice(payload),
        }
    }

    #[test]
    fn append_assigns_increasing_lsns() {
        let (mut w, _) = mk();
        let a = w.append(ins(1, b"a"));
        let b = w.append(ins(2, b"b"));
        assert!(b > a);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn append_and_flush_charge_time() {
        let (mut w, clock) = mk();
        let t0 = clock.now();
        w.append(ins(1, b"payload"));
        w.flush();
        assert!(clock.now() > t0);
    }

    #[test]
    fn scan_finds_payloads() {
        let (mut w, _) = mk();
        let lsn = w.append(ins(1, b"needle-here"));
        w.append(ins(2, b"other"));
        assert_eq!(w.scan(b"needle-here"), vec![lsn]);
        assert!(w.scan(b"absent").is_empty());
    }

    #[test]
    fn scrub_unit_blanks_payloads() {
        let (mut w, _) = mk();
        w.append(ins(1, b"pii-of-unit-1"));
        w.append(ins(2, b"pii-of-unit-2"));
        let n = w.scrub_unit(1);
        assert_eq!(n, 1);
        assert!(w.scan(b"pii-of-unit-1").is_empty());
        assert!(!w.scan(b"pii-of-unit-2").is_empty());
        assert_eq!(w.len(), 2, "records remain, payloads blanked");
    }

    #[test]
    fn truncate_drops_old_records() {
        let (mut w, _) = mk();
        let _a = w.append(ins(1, b"old"));
        let b = w.append(ins(2, b"new"));
        let dropped = w.truncate_before(b);
        assert_eq!(dropped, 1);
        assert_eq!(w.len(), 1);
        assert!(w.scan(b"old").is_empty());
    }

    #[test]
    fn bytes_accounting_tracks_payloads() {
        let (mut w, _) = mk();
        w.append(ins(1, &[0u8; 100]));
        assert_eq!(w.bytes(), 132);
        w.truncate_before(u64::MAX);
        assert_eq!(w.bytes(), 0);
    }
}
