//! The simulated disk: page-granular persistent storage, optionally
//! encrypted at the sector layer (the LUKS shim used by P_GBench).
//!
//! The disk is the ground truth the forensic scanner inspects: whatever
//! bytes live here after an "erasure" are what a seized drive would
//! reveal. With sector encryption enabled, residuals are ciphertext and a
//! plaintext scan comes back clean — exactly the protection the paper's
//! profile P_GBench buys with LUKS.
//!
//! Every encrypted page read/write routes through
//! [`SectorCipher::apply`], whose page-sized buffers take the
//! whole-block T-table fast path (`AesCtr::apply_blocks`) — the sector
//! layer is the biggest per-byte AES consumer in the system, so this is
//! where the crypto overhaul pays the most.

use datacase_crypto::sector::SectorCipher;
use datacase_sim::{Meter, SimClock};

use crate::page::PAGE_SIZE;

/// A page-granular simulated disk.
///
/// Besides the live sector contents, the disk models *drive remanence*:
/// when a sector is overwritten, its previous content lingers at the
/// physical layer (one generation) until a sanitisation pass clears it.
/// This is the distinction between *strong* deletion (file-level bytes
/// gone after VACUUM FULL) and *permanent* deletion (drive sanitised per
/// NISP-style guidance \[21\] in the paper).
pub struct Disk {
    sectors: Vec<Vec<u8>>,
    remanence: Vec<Option<Vec<u8>>>,
    cipher: Option<SectorCipher>,
    clock: SimClock,
    meter: std::sync::Arc<Meter>,
}

impl std::fmt::Debug for Disk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Disk")
            .field("pages", &self.sectors.len())
            .field("encrypted", &self.cipher.is_some())
            .finish()
    }
}

impl Disk {
    /// An empty, unencrypted disk.
    pub fn new(clock: SimClock, meter: std::sync::Arc<Meter>) -> Disk {
        Disk {
            sectors: Vec::new(),
            remanence: Vec::new(),
            cipher: None,
            clock,
            meter,
        }
    }

    /// An empty disk with LUKS-style sector encryption.
    pub fn encrypted(clock: SimClock, meter: std::sync::Arc<Meter>, cipher: SectorCipher) -> Disk {
        Disk {
            sectors: Vec::new(),
            remanence: Vec::new(),
            cipher: Some(cipher),
            clock,
            meter,
        }
    }

    /// Whether sector encryption is active.
    pub fn is_encrypted(&self) -> bool {
        self.cipher.is_some()
    }

    /// Number of allocated pages.
    pub fn len(&self) -> usize {
        self.sectors.len()
    }

    /// True if no page was allocated yet.
    pub fn is_empty(&self) -> bool {
        self.sectors.is_empty()
    }

    /// Total on-disk bytes.
    pub fn bytes(&self) -> u64 {
        (self.sectors.len() * PAGE_SIZE) as u64
    }

    /// Allocate a fresh zeroed page, returning its id. On an encrypted
    /// disk the stored bytes are the *ciphertext* of a zero page, so a
    /// later `read_page` decrypts back to logical zeros.
    pub fn allocate(&mut self) -> u32 {
        let id = self.sectors.len() as u32;
        let mut sector = vec![0u8; PAGE_SIZE];
        if let Some(c) = &self.cipher {
            c.apply(id as u64, &mut sector);
        }
        self.sectors.push(sector);
        self.remanence.push(None);
        id
    }

    /// Read a page from disk (decrypting if enabled). Charges random
    /// disk-read and crypto costs.
    pub fn read_page(&self, id: u32) -> Vec<u8> {
        self.read_page_inner(id, false)
    }

    /// Read a page as part of a sequential pass (scans, vacuum) — charged
    /// at the much cheaper sequential-I/O rate.
    pub fn read_page_seq(&self, id: u32) -> Vec<u8> {
        self.read_page_inner(id, true)
    }

    fn read_page_inner(&self, id: u32, sequential: bool) -> Vec<u8> {
        let model = self.clock.model().clone();
        self.clock.charge_nanos(if sequential {
            model.page_read_seq
        } else {
            model.page_read_disk
        });
        Meter::bump(&self.meter.pages_read_disk, 1);
        let mut data = self.sectors[id as usize].clone();
        if let Some(c) = &self.cipher {
            self.clock
                .charge(model.aes_cost(c.key_size().bits(), data.len()));
            Meter::bump(&self.meter.crypto_bytes, data.len() as u64);
            c.apply(id as u64, &mut data);
        }
        data
    }

    /// Write a page to disk (encrypting if enabled). Charges random
    /// disk-write and crypto costs.
    pub fn write_page(&mut self, id: u32, data: &[u8]) {
        self.write_page_inner(id, data, false)
    }

    /// Write a page as part of a sequential batch (vacuum ring buffer).
    pub fn write_page_seq(&mut self, id: u32, data: &[u8]) {
        self.write_page_inner(id, data, true)
    }

    fn write_page_inner(&mut self, id: u32, data: &[u8], sequential: bool) {
        assert_eq!(data.len(), PAGE_SIZE, "disk writes are page-sized");
        let model = self.clock.model().clone();
        self.clock.charge_nanos(if sequential {
            model.page_write_seq
        } else {
            model.page_write_disk
        });
        Meter::bump(&self.meter.pages_written, 1);
        let mut buf = data.to_vec();
        if let Some(c) = &self.cipher {
            self.clock
                .charge(model.aes_cost(c.key_size().bits(), buf.len()));
            Meter::bump(&self.meter.crypto_bytes, buf.len() as u64);
            c.apply(id as u64, &mut buf);
        }
        // Physical remanence: the previous sector content lingers at the
        // drive layer until sanitised.
        let old = std::mem::replace(&mut self.sectors[id as usize], buf);
        if old.iter().any(|&b| b != 0) {
            self.remanence[id as usize] = Some(old);
        }
    }

    /// The raw on-disk bytes of a page — ciphertext if encryption is on.
    /// This is what forensics sees; no cost is charged (it is the
    /// *observer's* read, not the system's).
    pub fn raw(&self, id: u32) -> &[u8] {
        &self.sectors[id as usize]
    }

    /// Overwrite a page with a sanitisation pattern `passes` times,
    /// charging sanitisation cost. The final pass leaves zeros, and the
    /// drive-level remanence for the sector is destroyed.
    pub fn sanitize_page(&mut self, id: u32, passes: u32) {
        let model = self.clock.model().clone();
        self.clock.charge(model.sanitize_cost(PAGE_SIZE, passes));
        let sector = &mut self.sectors[id as usize];
        // Model the alternating-pattern passes; the end state is zeros.
        for pass in 0..passes {
            let pattern = match pass % 3 {
                0 => 0xFFu8,
                1 => 0x00u8,
                _ => 0xAAu8,
            };
            sector.fill(pattern);
        }
        sector.fill(0);
        self.remanence[id as usize] = None;
    }

    /// Scan every raw page for `needle`, returning matching page ids.
    /// (Forensic observer: free of simulation cost.)
    pub fn scan_raw(&self, needle: &[u8]) -> Vec<u32> {
        if needle.is_empty() {
            return Vec::new();
        }
        let mut hits = Vec::new();
        for (id, sector) in self.sectors.iter().enumerate() {
            if sector.windows(needle.len()).any(|w| w == needle) {
                hits.push(id as u32);
            }
        }
        hits
    }

    /// Scan the drive-remanence layer for `needle` (what an advanced lab
    /// could recover from overwritten-but-unsanitised sectors).
    pub fn scan_remanent(&self, needle: &[u8]) -> Vec<u32> {
        if needle.is_empty() {
            return Vec::new();
        }
        let mut hits = Vec::new();
        for (id, ghost) in self.remanence.iter().enumerate() {
            if let Some(g) = ghost {
                if g.windows(needle.len()).any(|w| w == needle) {
                    hits.push(id as u32);
                }
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacase_crypto::aes::KeySize;
    use std::sync::Arc;

    fn mk_disk(encrypted: bool) -> Disk {
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        if encrypted {
            Disk::encrypted(
                clock,
                meter,
                SectorCipher::from_passphrase(b"test", KeySize::Aes256),
            )
        } else {
            Disk::new(clock, meter)
        }
    }

    fn page_with(content: &[u8]) -> Vec<u8> {
        let mut p = vec![0u8; PAGE_SIZE];
        p[100..100 + content.len()].copy_from_slice(content);
        p
    }

    #[test]
    fn write_read_roundtrip_plain() {
        let mut d = mk_disk(false);
        let id = d.allocate();
        d.write_page(id, &page_with(b"hello-disk"));
        let back = d.read_page(id);
        assert_eq!(&back[100..110], b"hello-disk");
    }

    #[test]
    fn write_read_roundtrip_encrypted() {
        let mut d = mk_disk(true);
        let id = d.allocate();
        d.write_page(id, &page_with(b"hello-disk"));
        let back = d.read_page(id);
        assert_eq!(&back[100..110], b"hello-disk");
    }

    #[test]
    fn raw_shows_plaintext_only_without_encryption() {
        let mut plain = mk_disk(false);
        let id = plain.allocate();
        plain.write_page(id, &page_with(b"SECRET-PII"));
        assert_eq!(plain.scan_raw(b"SECRET-PII"), vec![id]);

        let mut enc = mk_disk(true);
        let id2 = enc.allocate();
        enc.write_page(id2, &page_with(b"SECRET-PII"));
        assert!(
            enc.scan_raw(b"SECRET-PII").is_empty(),
            "sector encryption hides plaintext from the raw disk"
        );
    }

    #[test]
    fn sanitize_wipes_raw_bytes() {
        let mut d = mk_disk(false);
        let id = d.allocate();
        d.write_page(id, &page_with(b"TO-WIPE"));
        assert!(!d.scan_raw(b"TO-WIPE").is_empty());
        d.sanitize_page(id, 3);
        assert!(d.scan_raw(b"TO-WIPE").is_empty());
        assert!(d.raw(id).iter().all(|&b| b == 0));
    }

    #[test]
    fn io_charges_time_and_meter() {
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        let mut d = Disk::new(clock.clone(), meter.clone());
        let id = d.allocate();
        let t0 = clock.now();
        d.write_page(id, &vec![0u8; PAGE_SIZE]);
        let _ = d.read_page(id);
        assert!(clock.now() > t0);
        let snap = meter.snapshot();
        assert_eq!(snap.pages_written, 1);
        assert_eq!(snap.pages_read_disk, 1);
    }

    #[test]
    fn encrypted_io_costs_more_than_plain() {
        let c1 = SimClock::commodity();
        let m1 = Arc::new(Meter::new());
        let mut plain = Disk::new(c1.clone(), m1);
        let c2 = SimClock::commodity();
        let m2 = Arc::new(Meter::new());
        let mut enc = Disk::encrypted(
            c2.clone(),
            m2,
            SectorCipher::from_passphrase(b"x", KeySize::Aes256),
        );
        let p = vec![0u8; PAGE_SIZE];
        let a = plain.allocate();
        let b = enc.allocate();
        plain.write_page(a, &p);
        enc.write_page(b, &p);
        assert!(c2.now() > c1.now(), "crypto adds cost");
    }

    #[test]
    fn empty_needle_matches_nothing() {
        let d = mk_disk(false);
        assert!(d.scan_raw(b"").is_empty());
        assert!(d.scan_remanent(b"").is_empty());
    }

    #[test]
    fn overwrite_leaves_remanence_until_sanitised() {
        let mut d = mk_disk(false);
        let id = d.allocate();
        d.write_page(id, &page_with(b"GHOST-DATA"));
        // Overwrite with zeros: the file no longer shows it…
        d.write_page(id, &vec![0u8; PAGE_SIZE]);
        assert!(d.scan_raw(b"GHOST-DATA").is_empty());
        // …but the drive layer still does.
        assert_eq!(d.scan_remanent(b"GHOST-DATA"), vec![id]);
        d.sanitize_page(id, 3);
        assert!(d.scan_remanent(b"GHOST-DATA").is_empty());
    }
}
