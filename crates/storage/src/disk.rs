//! The simulated disk: page-granular persistent storage, optionally
//! encrypted at the sector layer (the LUKS shim used by P_GBench).
//!
//! The disk is the ground truth the forensic scanner inspects: whatever
//! bytes live here after an "erasure" are what a seized drive would
//! reveal. With sector encryption enabled, residuals are ciphertext and a
//! plaintext scan comes back clean — exactly the protection the paper's
//! profile P_GBench buys with LUKS.
//!
//! Every encrypted page read/write routes through
//! [`SectorCipher::apply`], whose page-sized buffers take the
//! whole-block T-table fast path (`AesCtr::apply_blocks`) — the sector
//! layer is the biggest per-byte AES consumer in the system, so this is
//! where the crypto overhaul pays the most.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::Arc;

use datacase_crypto::ctr::AesCtr;
use datacase_crypto::sector::SectorCipher;
use datacase_sim::{Meter, SimClock};

use crate::page::PAGE_SIZE;

/// One sector whose host-side encryption was deferred: everything a
/// worker thread needs to produce the ciphertext the serial path would
/// have written. Simulated costs were already charged at write time —
/// this is pure host work, which is exactly why it can move to a worker.
#[derive(Debug)]
pub struct PendingSectorCrypto {
    /// The sector id (also the page id).
    pub sector: u32,
    /// The sector-bound ESSIV IV.
    pub iv: [u8; 16],
    /// Shared handle to the disk's expanded CTR cipher.
    pub cipher: Arc<AesCtr>,
    /// The plaintext page content to encrypt in place.
    pub data: Vec<u8>,
}

/// A page-granular simulated disk.
///
/// Besides the live sector contents, the disk models *drive remanence*:
/// when a sector is overwritten, its previous content lingers at the
/// physical layer (one generation) until a sanitisation pass clears it.
/// This is the distinction between *strong* deletion (file-level bytes
/// gone after VACUUM FULL) and *permanent* deletion (drive sanitised per
/// NISP-style guidance \[21\] in the paper).
pub struct Disk {
    sectors: Vec<Vec<u8>>,
    remanence: Vec<Option<Vec<u8>>>,
    cipher: Option<SectorCipher>,
    clock: SimClock,
    meter: std::sync::Arc<Meter>,
    /// Deferred-crypto mode: encrypted writes store plaintext and mark
    /// the sector pending instead of running host AES inline; the
    /// pipeline drains [`take_pending_crypto`](Disk::take_pending_crypto)
    /// onto its workers at span flush. Simulated charges are identical
    /// either way — only where the host cipher runs moves.
    deferred: bool,
    /// Sectors currently holding plaintext awaiting encryption, in
    /// deterministic (sorted) order.
    pending: BTreeSet<u32>,
    /// Direct-mapped sector-keystream cache: slot `sector % capacity`
    /// holds `(sector, keystream page)`. A sector's CTR keystream depends
    /// only on the disk key and the sector number — it never goes stale —
    /// so hot sectors cross the cipher as a XOR against the cached
    /// stream. `RefCell` because reads are `&self`; empty = disabled.
    ks_cache: RefCell<Vec<KeystreamSlot>>,
}

/// One direct-mapped cache slot: the resident sector and its keystream.
type KeystreamSlot = Option<(u32, Vec<u8>)>;

/// XOR a whole page against its keystream in u128 lanes.
fn xor_page(data: &mut [u8], ks: &[u8]) {
    debug_assert_eq!(data.len(), ks.len());
    for (d, k) in data.chunks_exact_mut(16).zip(ks.chunks_exact(16)) {
        let x =
            u128::from_ne_bytes(d.try_into().unwrap()) ^ u128::from_ne_bytes(k.try_into().unwrap());
        d.copy_from_slice(&x.to_ne_bytes());
    }
}

impl std::fmt::Debug for Disk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Disk")
            .field("pages", &self.sectors.len())
            .field("encrypted", &self.cipher.is_some())
            .finish()
    }
}

impl Disk {
    /// An empty, unencrypted disk.
    pub fn new(clock: SimClock, meter: std::sync::Arc<Meter>) -> Disk {
        Disk {
            sectors: Vec::new(),
            remanence: Vec::new(),
            cipher: None,
            clock,
            meter,
            deferred: false,
            pending: BTreeSet::new(),
            ks_cache: RefCell::new(Vec::new()),
        }
    }

    /// An empty disk with LUKS-style sector encryption.
    pub fn encrypted(clock: SimClock, meter: std::sync::Arc<Meter>, cipher: SectorCipher) -> Disk {
        Disk {
            sectors: Vec::new(),
            remanence: Vec::new(),
            cipher: Some(cipher),
            clock,
            meter,
            deferred: false,
            pending: BTreeSet::new(),
            ks_cache: RefCell::new(Vec::new()),
        }
    }

    /// Bound the sector-keystream cache at `pages` entries (`0` disables
    /// it, the construction default). Cached entries hold *keystream*
    /// (the CTR encryption of a zero page), never sector content: a hit
    /// turns a page encrypt/decrypt into a XOR without touching what is
    /// stored, charged, or observable — ciphertext bytes, remanence
    /// ghosts, and every simulated cost are bit-identical with the cache
    /// on or off. Reference-mode ciphers bypass the cache so A/B
    /// baselines keep their honest cost.
    pub fn with_keystream_cache(self, pages: usize) -> Disk {
        *self.ks_cache.borrow_mut() = vec![None; pages];
        self
    }

    /// Whether sector encryption is active.
    pub fn is_encrypted(&self) -> bool {
        self.cipher.is_some()
    }

    /// Number of allocated pages.
    pub fn len(&self) -> usize {
        self.sectors.len()
    }

    /// True if no page was allocated yet.
    pub fn is_empty(&self) -> bool {
        self.sectors.is_empty()
    }

    /// Total on-disk bytes.
    pub fn bytes(&self) -> u64 {
        (self.sectors.len() * PAGE_SIZE) as u64
    }

    /// Host-side page crypt routed through the sector-keystream cache.
    /// On a hit the AES collapses to [`xor_page`]; a miss derives the
    /// keystream once (CTR encryption of a zero page *is* the keystream)
    /// and fills the direct-mapped slot. Bypassed for ragged buffers,
    /// with the cache disabled, and in reference mode. Callers charge
    /// `aes_cost` identically on every path — only host work moves.
    fn host_crypt(&self, c: &SectorCipher, id: u32, data: &mut [u8]) {
        let mut cache = self.ks_cache.borrow_mut();
        if cache.is_empty() || data.len() != PAGE_SIZE || c.reference_mode() {
            c.apply(id as u64, data);
            return;
        }
        let slot = id as usize % cache.len();
        match &cache[slot] {
            Some((sector, ks)) if *sector == id => xor_page(data, ks),
            _ => {
                let mut ks = vec![0u8; PAGE_SIZE];
                c.apply(id as u64, &mut ks);
                xor_page(data, &ks);
                cache[slot] = Some((id, ks));
            }
        }
    }

    /// Allocate a fresh zeroed page, returning its id. On an encrypted
    /// disk the stored bytes are the *ciphertext* of a zero page, so a
    /// later `read_page` decrypts back to logical zeros.
    pub fn allocate(&mut self) -> u32 {
        let id = self.sectors.len() as u32;
        let mut sector = vec![0u8; PAGE_SIZE];
        if let Some(c) = &self.cipher {
            if self.deferred {
                self.pending.insert(id);
            } else {
                self.host_crypt(c, id, &mut sector);
            }
        }
        self.sectors.push(sector);
        self.remanence.push(None);
        id
    }

    /// Read a page from disk (decrypting if enabled). Charges random
    /// disk-read and crypto costs.
    pub fn read_page(&self, id: u32) -> Vec<u8> {
        self.read_page_inner(id, false)
    }

    /// Read a page as part of a sequential pass (scans, vacuum) — charged
    /// at the much cheaper sequential-I/O rate.
    pub fn read_page_seq(&self, id: u32) -> Vec<u8> {
        self.read_page_inner(id, true)
    }

    fn read_page_inner(&self, id: u32, sequential: bool) -> Vec<u8> {
        let model = self.clock.model().clone();
        self.clock.charge_nanos(if sequential {
            model.page_read_seq
        } else {
            model.page_read_disk
        });
        Meter::bump(&self.meter.pages_read_disk, 1);
        let mut data = self.sectors[id as usize].clone();
        if let Some(c) = &self.cipher {
            self.clock
                .charge(model.aes_cost(c.key_size().bits(), data.len()));
            Meter::bump(&self.meter.crypto_bytes, data.len() as u64);
            // A pending sector still holds plaintext: the decrypt charge
            // lands as usual but the host cipher has nothing to undo.
            if !self.pending.contains(&id) {
                self.host_crypt(c, id, &mut data);
            }
        }
        data
    }

    /// Write a page to disk (encrypting if enabled). Charges random
    /// disk-write and crypto costs.
    pub fn write_page(&mut self, id: u32, data: &[u8]) {
        self.write_page_inner(id, data, false)
    }

    /// Write a page as part of a sequential batch (vacuum ring buffer).
    pub fn write_page_seq(&mut self, id: u32, data: &[u8]) {
        self.write_page_inner(id, data, true)
    }

    fn write_page_inner(&mut self, id: u32, data: &[u8], sequential: bool) {
        assert_eq!(data.len(), PAGE_SIZE, "disk writes are page-sized");
        let model = self.clock.model().clone();
        self.clock.charge_nanos(if sequential {
            model.page_write_seq
        } else {
            model.page_write_disk
        });
        Meter::bump(&self.meter.pages_written, 1);
        let mut buf = data.to_vec();
        let mut defer = false;
        if let Some(c) = &self.cipher {
            self.clock
                .charge(model.aes_cost(c.key_size().bits(), buf.len()));
            Meter::bump(&self.meter.crypto_bytes, buf.len() as u64);
            if self.deferred {
                defer = true;
            } else {
                self.host_crypt(c, id, &mut buf);
            }
        }
        // If the sector's previous content is itself a pending plaintext
        // write, seal it now: the remanence ghost below must be the
        // ciphertext the serial path would have left at the drive layer.
        if defer {
            self.seal_sector(id);
        }
        // Physical remanence: the previous sector content lingers at the
        // drive layer until sanitised.
        let old = std::mem::replace(&mut self.sectors[id as usize], buf);
        if old.iter().any(|&b| b != 0) {
            self.remanence[id as usize] = Some(old);
        }
        if defer {
            self.pending.insert(id);
        }
    }

    /// Host-encrypt a pending sector in place (no simulated charge — the
    /// write that marked it pending already paid). No-op for sectors that
    /// are not pending.
    fn seal_sector(&mut self, id: u32) {
        if self.pending.remove(&id) {
            let mut data = std::mem::take(&mut self.sectors[id as usize]);
            if let Some(c) = &self.cipher {
                self.host_crypt(c, id, &mut data);
            }
            self.sectors[id as usize] = data;
        }
    }

    /// Switch deferred sector crypto on or off. Turning it off seals any
    /// still-pending sectors inline — the safety net that keeps the disk
    /// externally indistinguishable from serial operation whenever
    /// deferral is not active. Meaningless (but harmless) without sector
    /// encryption.
    pub fn set_deferred_crypto(&mut self, on: bool) {
        self.deferred = on;
        if !on {
            let ids: Vec<u32> = std::mem::take(&mut self.pending).into_iter().collect();
            for id in ids {
                let mut data = std::mem::take(&mut self.sectors[id as usize]);
                if let Some(c) = &self.cipher {
                    self.host_crypt(c, id, &mut data);
                }
                self.sectors[id as usize] = data;
            }
        }
    }

    /// Take every pending sector as a self-contained encryption job
    /// (sorted by sector id), leaving the sectors empty until the
    /// ciphertext comes back via
    /// [`store_ciphertext`](Disk::store_ciphertext). The caller — the
    /// pipeline's span flush — must store every job's result before any
    /// other disk access.
    pub fn take_pending_crypto(&mut self) -> Vec<PendingSectorCrypto> {
        let Some(c) = &self.cipher else {
            return Vec::new();
        };
        // With the keystream cache live, sealing a sector is a XOR (plus
        // at most one stream derivation per cold slot) — cheaper done
        // right here than shipped to workers, which would re-run full
        // AES per page. Fan-out remains the path for uncached configs.
        let seal_inline = !self.ks_cache.borrow().is_empty() && !c.reference_mode();
        let ids: Vec<u32> = std::mem::take(&mut self.pending).into_iter().collect();
        if seal_inline {
            for id in ids {
                let mut data = std::mem::take(&mut self.sectors[id as usize]);
                if let Some(c) = &self.cipher {
                    self.host_crypt(c, id, &mut data);
                }
                self.sectors[id as usize] = data;
            }
            return Vec::new();
        }
        ids.into_iter()
            .map(|id| PendingSectorCrypto {
                sector: id,
                iv: c.sector_iv(id as u64),
                cipher: c.shared_ctr(),
                data: std::mem::take(&mut self.sectors[id as usize]),
            })
            .collect()
    }

    /// Store the ciphertext produced for a job handed out by
    /// [`take_pending_crypto`](Disk::take_pending_crypto).
    pub fn store_ciphertext(&mut self, sector: u32, data: Vec<u8>) {
        debug_assert_eq!(data.len(), PAGE_SIZE, "sealed sectors are page-sized");
        self.sectors[sector as usize] = data;
    }

    /// The raw on-disk bytes of a page — ciphertext if encryption is on.
    /// This is what forensics sees; no cost is charged (it is the
    /// *observer's* read, not the system's).
    pub fn raw(&self, id: u32) -> &[u8] {
        &self.sectors[id as usize]
    }

    /// Overwrite a page with a sanitisation pattern `passes` times,
    /// charging sanitisation cost. The final pass leaves zeros, and the
    /// drive-level remanence for the sector is destroyed.
    pub fn sanitize_page(&mut self, id: u32, passes: u32) {
        let model = self.clock.model().clone();
        self.clock.charge(model.sanitize_cost(PAGE_SIZE, passes));
        let sector = &mut self.sectors[id as usize];
        // Model the alternating-pattern passes; the end state is zeros.
        for pass in 0..passes {
            let pattern = match pass % 3 {
                0 => 0xFFu8,
                1 => 0x00u8,
                _ => 0xAAu8,
            };
            sector.fill(pattern);
        }
        sector.fill(0);
        self.remanence[id as usize] = None;
        // A sanitised sector holds literal zeros in either mode; nothing
        // is left to encrypt.
        self.pending.remove(&id);
    }

    /// Scan every raw page for `needle`, returning matching page ids.
    /// (Forensic observer: free of simulation cost.)
    pub fn scan_raw(&self, needle: &[u8]) -> Vec<u32> {
        if needle.is_empty() {
            return Vec::new();
        }
        let mut hits = Vec::new();
        for (id, sector) in self.sectors.iter().enumerate() {
            if sector.windows(needle.len()).any(|w| w == needle) {
                hits.push(id as u32);
            }
        }
        hits
    }

    /// Scan the drive-remanence layer for `needle` (what an advanced lab
    /// could recover from overwritten-but-unsanitised sectors).
    pub fn scan_remanent(&self, needle: &[u8]) -> Vec<u32> {
        if needle.is_empty() {
            return Vec::new();
        }
        let mut hits = Vec::new();
        for (id, ghost) in self.remanence.iter().enumerate() {
            if let Some(g) = ghost {
                if g.windows(needle.len()).any(|w| w == needle) {
                    hits.push(id as u32);
                }
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacase_crypto::aes::KeySize;
    use std::sync::Arc;

    fn mk_disk(encrypted: bool) -> Disk {
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        if encrypted {
            Disk::encrypted(
                clock,
                meter,
                SectorCipher::from_passphrase(b"test", KeySize::Aes256),
            )
        } else {
            Disk::new(clock, meter)
        }
    }

    fn page_with(content: &[u8]) -> Vec<u8> {
        let mut p = vec![0u8; PAGE_SIZE];
        p[100..100 + content.len()].copy_from_slice(content);
        p
    }

    #[test]
    fn write_read_roundtrip_plain() {
        let mut d = mk_disk(false);
        let id = d.allocate();
        d.write_page(id, &page_with(b"hello-disk"));
        let back = d.read_page(id);
        assert_eq!(&back[100..110], b"hello-disk");
    }

    #[test]
    fn write_read_roundtrip_encrypted() {
        let mut d = mk_disk(true);
        let id = d.allocate();
        d.write_page(id, &page_with(b"hello-disk"));
        let back = d.read_page(id);
        assert_eq!(&back[100..110], b"hello-disk");
    }

    #[test]
    fn raw_shows_plaintext_only_without_encryption() {
        let mut plain = mk_disk(false);
        let id = plain.allocate();
        plain.write_page(id, &page_with(b"SECRET-PII"));
        assert_eq!(plain.scan_raw(b"SECRET-PII"), vec![id]);

        let mut enc = mk_disk(true);
        let id2 = enc.allocate();
        enc.write_page(id2, &page_with(b"SECRET-PII"));
        assert!(
            enc.scan_raw(b"SECRET-PII").is_empty(),
            "sector encryption hides plaintext from the raw disk"
        );
    }

    #[test]
    fn sanitize_wipes_raw_bytes() {
        let mut d = mk_disk(false);
        let id = d.allocate();
        d.write_page(id, &page_with(b"TO-WIPE"));
        assert!(!d.scan_raw(b"TO-WIPE").is_empty());
        d.sanitize_page(id, 3);
        assert!(d.scan_raw(b"TO-WIPE").is_empty());
        assert!(d.raw(id).iter().all(|&b| b == 0));
    }

    #[test]
    fn io_charges_time_and_meter() {
        let clock = SimClock::commodity();
        let meter = Arc::new(Meter::new());
        let mut d = Disk::new(clock.clone(), meter.clone());
        let id = d.allocate();
        let t0 = clock.now();
        d.write_page(id, &vec![0u8; PAGE_SIZE]);
        let _ = d.read_page(id);
        assert!(clock.now() > t0);
        let snap = meter.snapshot();
        assert_eq!(snap.pages_written, 1);
        assert_eq!(snap.pages_read_disk, 1);
    }

    #[test]
    fn encrypted_io_costs_more_than_plain() {
        let c1 = SimClock::commodity();
        let m1 = Arc::new(Meter::new());
        let mut plain = Disk::new(c1.clone(), m1);
        let c2 = SimClock::commodity();
        let m2 = Arc::new(Meter::new());
        let mut enc = Disk::encrypted(
            c2.clone(),
            m2,
            SectorCipher::from_passphrase(b"x", KeySize::Aes256),
        );
        let p = vec![0u8; PAGE_SIZE];
        let a = plain.allocate();
        let b = enc.allocate();
        plain.write_page(a, &p);
        enc.write_page(b, &p);
        assert!(c2.now() > c1.now(), "crypto adds cost");
    }

    #[test]
    fn empty_needle_matches_nothing() {
        let d = mk_disk(false);
        assert!(d.scan_raw(b"").is_empty());
        assert!(d.scan_remanent(b"").is_empty());
    }

    #[test]
    fn cached_disk_seals_pending_inline_instead_of_emitting_jobs() {
        let mut d = Disk::encrypted(
            SimClock::commodity(),
            Arc::new(Meter::new()),
            SectorCipher::from_passphrase(b"seal-inline", KeySize::Aes256),
        )
        .with_keystream_cache(8);
        d.set_deferred_crypto(true);
        let id = d.allocate();
        d.write_page(id, &page_with(b"inline-seal"));
        let jobs = d.take_pending_crypto();
        assert!(jobs.is_empty(), "cached disks keep sealing local");
        assert!(
            d.scan_raw(b"inline-seal").is_empty(),
            "pending sector was sealed"
        );
        assert_eq!(&d.read_page(id)[100..111], b"inline-seal");
    }

    #[test]
    fn keystream_cache_is_invisible_in_bytes_and_charges() {
        // The same write/overwrite/read sequence on a cached and an
        // uncached encrypted disk: raw sector bytes, remanence ghosts,
        // decrypted reads, simulated time and meter must all agree —
        // the cache only moves host work.
        let clock_a = SimClock::commodity();
        let clock_b = SimClock::commodity();
        let meter_a = Arc::new(Meter::new());
        let meter_b = Arc::new(Meter::new());
        let cipher = || SectorCipher::from_passphrase(b"ks-cache", KeySize::Aes256);
        let mut cached =
            Disk::encrypted(clock_a.clone(), meter_a.clone(), cipher()).with_keystream_cache(8);
        let mut plain_path = Disk::encrypted(clock_b.clone(), meter_b.clone(), cipher());
        for d in [&mut cached, &mut plain_path] {
            for _ in 0..12 {
                d.allocate(); // 12 pages > 8 slots: exercises collisions
            }
            for round in 0..3u8 {
                for id in 0..12u32 {
                    d.write_page(id, &page_with(&[round + 1, id as u8, 0x5A]));
                }
            }
        }
        for id in 0..12u32 {
            assert_eq!(cached.raw(id), plain_path.raw(id), "sector {id}");
            assert_eq!(cached.read_page(id), plain_path.read_page(id));
            assert_eq!(
                cached.remanence[id as usize], plain_path.remanence[id as usize],
                "remanence ghost {id}"
            );
        }
        assert_eq!(clock_a.now(), clock_b.now(), "simulated time diverged");
        assert_eq!(
            meter_a.snapshot(),
            meter_b.snapshot(),
            "meter counters diverged"
        );
    }

    #[test]
    fn deferred_crypto_drain_matches_serial_bytes_and_charges() {
        // The same write sequence on a serial disk and a deferred disk
        // (drained through take/store, like the pipeline does) must leave
        // identical sectors, remanence, clock and meter.
        let c1 = SimClock::commodity();
        let m1 = Arc::new(Meter::new());
        let mut serial = Disk::encrypted(
            c1.clone(),
            m1.clone(),
            SectorCipher::from_passphrase(b"test", KeySize::Aes256),
        );
        let c2 = SimClock::commodity();
        let m2 = Arc::new(Meter::new());
        let mut deferred = Disk::encrypted(
            c2.clone(),
            m2.clone(),
            SectorCipher::from_passphrase(b"test", KeySize::Aes256),
        );
        deferred.set_deferred_crypto(true);

        for d in [&mut serial, &mut deferred] {
            let a = d.allocate();
            let b = d.allocate();
            d.write_page(a, &page_with(b"first-content"));
            d.write_page(b, &page_with(b"second-content"));
            // Overwrite a pending sector: remanence must still be the
            // ciphertext of the first content.
            d.write_page(a, &page_with(b"first-overwrite"));
            // Read-back of a pending sector decrypts to the same bytes.
            assert_eq!(&d.read_page(a)[100..115], b"first-overwrite");
        }

        let jobs = deferred.take_pending_crypto();
        assert!(!jobs.is_empty(), "deferred mode must hand out sector jobs");
        for mut j in jobs {
            j.cipher.apply_blocks(j.iv, &mut j.data);
            deferred.store_ciphertext(j.sector, j.data);
        }
        deferred.set_deferred_crypto(false);

        for id in 0..serial.len() as u32 {
            assert_eq!(serial.raw(id), deferred.raw(id), "sector {id}");
        }
        assert_eq!(serial.scan_remanent(b"first-content").len(), 0);
        assert_eq!(
            deferred.scan_remanent(b"first-content").len(),
            0,
            "remanence holds ciphertext, not deferred plaintext"
        );
        assert_eq!(c1.now(), c2.now(), "simulated charges are identical");
        assert_eq!(m1.snapshot().crypto_bytes, m2.snapshot().crypto_bytes);
    }

    #[test]
    fn disabling_deferral_seals_pending_sectors_inline() {
        let mut d = mk_disk(true);
        d.set_deferred_crypto(true);
        let id = d.allocate();
        d.write_page(id, &page_with(b"SEAL-ME-PII"));
        assert_eq!(d.scan_raw(b"SEAL-ME-PII"), vec![id], "pending = plaintext");
        d.set_deferred_crypto(false);
        assert!(
            d.scan_raw(b"SEAL-ME-PII").is_empty(),
            "safety net: no plaintext survives leaving deferred mode"
        );
        assert_eq!(&d.read_page(id)[100..111], b"SEAL-ME-PII");
    }

    #[test]
    fn sanitize_clears_pending_state() {
        let mut d = mk_disk(true);
        d.set_deferred_crypto(true);
        let id = d.allocate();
        d.write_page(id, &page_with(b"WIPE-PENDING"));
        d.sanitize_page(id, 3);
        assert!(d.take_pending_crypto().is_empty());
        assert!(d.raw(id).iter().all(|&b| b == 0));
    }

    #[test]
    fn overwrite_leaves_remanence_until_sanitised() {
        let mut d = mk_disk(false);
        let id = d.allocate();
        d.write_page(id, &page_with(b"GHOST-DATA"));
        // Overwrite with zeros: the file no longer shows it…
        d.write_page(id, &vec![0u8; PAGE_SIZE]);
        assert!(d.scan_raw(b"GHOST-DATA").is_empty());
        // …but the drive layer still does.
        assert_eq!(d.scan_remanent(b"GHOST-DATA"), vec![id]);
        d.sanitize_page(id, 3);
        assert!(d.scan_remanent(b"GHOST-DATA").is_empty());
    }
}
