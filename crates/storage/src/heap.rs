//! The PostgreSQL-style heap engine.
//!
//! Mechanics reproduced faithfully because the paper's Figure 4a depends on
//! them:
//!
//! * `DELETE` stamps `xmax` — the tuple's bytes stay on the page;
//! * scans and index probes pay for every dead version they skip, so
//!   deletes *slow down the other 80 % of the workload* until vacuumed;
//! * `VACUUM` reclaims dead tuples in place (and wipes their bytes);
//! * `VACUUM FULL` rewrites the table into fresh pages, zeroes the old
//!   ones (leaving drive-level remanence), and rebuilds the index;
//! * the *hidden attribute* update implements reversible inaccessibility —
//!   and, being an MVCC update, it bloats the table exactly like the
//!   "Tombstones (Indexing)" line in Figure 4a.

use std::sync::Arc;

use bytes::Bytes;
use datacase_crypto::sector::SectorCipher;
use datacase_crypto::CryptoBackend;
use datacase_sim::fault::{CrashPoint, FaultInjector};
use datacase_sim::{Meter, SimClock};

use crate::btree::BTreeIndex;
use crate::buffer::BufferPool;
use crate::disk::Disk;
use crate::error::{Result, StorageError};
use crate::fsm::FreeSpaceMap;
use crate::page::{Page, SlotState, LP_SIZE, MAX_TUPLE};
use crate::tuple::{self, Tid, TupleHeader, FLAG_HIDDEN};
use crate::txn::TxnManager;
use crate::wal::{Wal, WalRecord};

/// Heap engine configuration.
#[derive(Clone, Debug)]
pub struct HeapConfig {
    /// Buffer-pool capacity in pages.
    pub buffer_pages: usize,
    /// LUKS-style sector encryption passphrase (None = plaintext disk).
    pub disk_passphrase: Option<Vec<u8>>,
    /// fsync the WAL at every statement commit.
    pub fsync_per_commit: bool,
    /// Which AES implementation the sector cipher runs
    /// ([`CryptoBackend::Auto`] detects hardware AES at construction;
    /// per-instance bench A/B; ciphertext bytes are unchanged).
    pub crypto_backend: CryptoBackend,
    /// Capacity (pages) of the disk's sector-keystream cache; `0`
    /// disables it. A sector's CTR keystream is a pure function of the
    /// disk key and the sector number, so cached streams never go stale
    /// and hold no sector content — hot pages cross the cipher as a XOR
    /// while ciphertext bytes, remanence ghosts, and all simulated
    /// charges stay bit-identical. Ignored (bypassed) when
    /// [`crypto_backend`](HeapConfig::crypto_backend) resolves to the
    /// reference path, so A/B baselines keep their honest cost.
    pub sector_keystream_pages: usize,
    /// Crash-injection plane shared with the engine (chaos harness).
    /// The disabled default makes every tap a single `None` check.
    pub fault: FaultInjector,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            buffer_pages: 256,
            disk_passphrase: None,
            fsync_per_commit: true,
            crypto_backend: CryptoBackend::Auto,
            sector_keystream_pages: 4096,
            fault: FaultInjector::disabled(),
        }
    }
}

/// Statistics after a vacuum pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VacuumStats {
    /// Pages examined.
    pub pages_scanned: usize,
    /// Dead tuples reclaimed.
    pub tuples_reclaimed: usize,
    /// Residual payload bytes wiped.
    pub bytes_wiped: usize,
    /// Index entries removed.
    pub index_entries_removed: usize,
}

/// Table-level statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct HeapStats {
    /// Pages in the table.
    pub pages: usize,
    /// Visible (live) tuples.
    pub live_tuples: u64,
    /// Dead (deleted/superseded, unvacuumed) tuples.
    pub dead_tuples: u64,
    /// Bytes the table occupies on disk.
    pub disk_bytes: u64,
    /// Index size in bytes.
    pub index_bytes: u64,
    /// Retained WAL bytes.
    pub wal_bytes: u64,
}

/// The heap database: one table + primary-key B+tree + WAL + buffer pool.
///
/// ```
/// use datacase_storage::heap::HeapDb;
///
/// let mut db = HeapDb::default_single();
/// db.insert(1, 100, b"personal-data").unwrap();
/// db.delete(1).unwrap();
/// db.checkpoint();
/// // DELETE is logical: the bytes remain on the page…
/// assert!(!db.disk().scan_raw(b"personal-data").is_empty());
/// // …until VACUUM physically reclaims them.
/// db.vacuum();
/// db.checkpoint();
/// assert!(db.disk().scan_raw(b"personal-data").is_empty());
/// ```
pub struct HeapDb {
    disk: Disk,
    buffer: BufferPool,
    pages: Vec<u32>,
    retired_pages: Vec<u32>,
    fsm: FreeSpaceMap,
    index: BTreeIndex,
    txn: TxnManager,
    wal: Wal,
    clock: SimClock,
    meter: Arc<Meter>,
    config: HeapConfig,
    live: u64,
    dead: u64,
    /// Visibility-map analogue: table positions known to hold dead tuples.
    /// VACUUM visits only these pages and skips the all-visible rest,
    /// exactly like PostgreSQL's visibility map.
    dead_pages: std::collections::BTreeSet<u32>,
}

impl std::fmt::Debug for HeapDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapDb")
            .field("pages", &self.pages.len())
            .field("live", &self.live)
            .field("dead", &self.dead)
            .finish()
    }
}

impl HeapDb {
    /// A fresh heap with the given config, clock and meter.
    pub fn new(config: HeapConfig, clock: SimClock, meter: Arc<Meter>) -> HeapDb {
        let disk = match &config.disk_passphrase {
            // The KDF and the AES key schedule run once here; every page
            // the disk encrypts afterwards reuses the expanded schedule
            // through the whole-block fast path.
            Some(pass) => Disk::encrypted(
                clock.clone(),
                meter.clone(),
                SectorCipher::from_passphrase(pass, datacase_crypto::aes::KeySize::Aes256)
                    .with_backend(config.crypto_backend),
            )
            .with_keystream_cache(config.sector_keystream_pages),
            None => Disk::new(clock.clone(), meter.clone()),
        };
        HeapDb {
            buffer: BufferPool::new(config.buffer_pages, clock.clone(), meter.clone()),
            disk,
            pages: Vec::new(),
            retired_pages: Vec::new(),
            fsm: FreeSpaceMap::new(),
            index: BTreeIndex::new(clock.clone(), meter.clone()),
            txn: TxnManager::new(),
            wal: Wal::new(clock.clone(), meter.clone()),
            clock,
            meter,
            config,
            live: 0,
            dead: 0,
            dead_pages: std::collections::BTreeSet::new(),
        }
    }

    /// A heap with default config on a fresh clock/meter (tests, examples).
    pub fn default_single() -> HeapDb {
        HeapDb::new(
            HeapConfig::default(),
            SimClock::commodity(),
            Arc::new(Meter::new()),
        )
    }

    fn commit(&mut self) {
        self.clock.charge_nanos(self.clock.model().txn_overhead);
        if self.config.fsync_per_commit {
            self.wal.flush();
        }
    }

    /// Append a WAL record through the crash-injection tap: an armed
    /// `wal-append` crash fires *before* the record is durable, so
    /// recovery replays a log that never saw it.
    fn log(&mut self, rec: WalRecord) {
        self.config.fault.hit(CrashPoint::WalAppend);
        self.wal.append(rec);
    }

    fn disk_page(&self, pos: u32) -> u32 {
        self.pages[pos as usize]
    }

    /// Find the visible version of `key` (hidden versions included).
    fn find_visible(&mut self, key: u64) -> Option<(Tid, TupleHeader)> {
        let snap = self.txn.snapshot();
        let candidates = self.index.get(key);
        let mut found = None;
        for tid in candidates {
            let disk_id = self.disk_page(tid.page);
            let page = self.buffer.page(&mut self.disk, disk_id);
            let Some(bytes) = page.tuple(tid.slot) else {
                continue;
            };
            let (header, _) = tuple::decode(bytes);
            if snap.visible(&header) {
                self.clock.charge_nanos(self.clock.model().tuple_cpu);
                Meter::bump(&self.meter.tuples_scanned, 1);
                found = Some((tid, header));
                break;
            } else {
                self.clock.charge_nanos(self.clock.model().dead_tuple_skip);
                Meter::bump(&self.meter.dead_tuples_skipped, 1);
            }
        }
        found
    }

    fn place_tuple(&mut self, encoded: &[u8]) -> Result<Tid> {
        if encoded.len() > MAX_TUPLE {
            return Err(StorageError::TupleTooLarge {
                size: encoded.len(),
                max: MAX_TUPLE,
            });
        }
        let need = encoded.len() + LP_SIZE;
        let pos = match self.fsm.find(need) {
            Some(p) => p,
            None => {
                let disk_id = self.disk.allocate();
                self.pages.push(disk_id);
                let p = self.fsm.add_page(Page::new().free_space());
                debug_assert_eq!(p as usize, self.pages.len() - 1);
                p
            }
        };
        let disk_id = self.disk_page(pos);
        let page = self.buffer.page_mut(&mut self.disk, disk_id);
        let slot = page
            .insert(encoded)
            .expect("FSM guaranteed space for tuple");
        let free = page.free_space();
        self.fsm.set(pos, free);
        Ok(Tid { page: pos, slot })
    }

    /// INSERT: add a new record. Fails on a visible duplicate key.
    pub fn insert(&mut self, key: u64, unit_id: u64, payload: &[u8]) -> Result<Tid> {
        if self.find_visible(key).is_some() {
            return Err(StorageError::DuplicateKey(key));
        }
        let xid = self.txn.begin();
        let header = TupleHeader::new(xid, unit_id, key);
        let encoded = tuple::encode(&header, payload);
        let tid = self.place_tuple(&encoded)?;
        self.index.insert(key, tid);
        self.log(WalRecord::Insert {
            xid,
            key,
            unit_id,
            payload: Bytes::copy_from_slice(payload),
        });
        self.live += 1;
        self.commit();
        Ok(tid)
    }

    /// SELECT by key. Hidden versions return `None` unless `include_hidden`.
    pub fn read(&mut self, key: u64, include_hidden: bool) -> Option<Vec<u8>> {
        let (tid, header) = self.find_visible(key)?;
        if header.is_hidden() && !include_hidden {
            return None;
        }
        let disk_id = self.disk_page(tid.page);
        let page = self.buffer.page(&mut self.disk, disk_id);
        let (_, payload) = tuple::decode(page.tuple(tid.slot).expect("visible tuple"));
        Some(payload.to_vec())
    }

    /// The unit id stored under `key`, if visible.
    pub fn unit_of(&mut self, key: u64) -> Option<u64> {
        self.find_visible(key).map(|(_, h)| h.unit_id)
    }

    /// `flags`: `Some(bits)` sets the new version's flags explicitly;
    /// `None` inherits the old version's flags (a plain UPDATE does not
    /// touch the hidden attribute).
    fn new_version(&mut self, key: u64, payload: &[u8], flags: Option<u16>) -> Result<Tid> {
        if tuple::TUPLE_HEADER + payload.len() > MAX_TUPLE {
            return Err(StorageError::TupleTooLarge {
                size: tuple::TUPLE_HEADER + payload.len(),
                max: MAX_TUPLE,
            });
        }
        let Some((old_tid, mut old_header)) = self.find_visible(key) else {
            return Err(StorageError::KeyNotFound(key));
        };
        let xid = self.txn.begin();
        // Stamp xmax on the old version (in place).
        old_header.xmax = xid;
        let disk_id = self.disk_page(old_tid.page);
        let page = self.buffer.page_mut(&mut self.disk, disk_id);
        let bytes = page.tuple_mut(old_tid.slot).expect("old version present");
        tuple::patch_header(bytes, &old_header);
        self.dead += 1;
        self.dead_pages.insert(old_tid.page);
        // Insert the new version.
        let mut header = TupleHeader::new(xid, old_header.unit_id, key);
        header.flags = flags.unwrap_or(old_header.flags);
        let encoded = tuple::encode(&header, payload);
        let tid = self.place_tuple(&encoded)?;
        self.index.insert(key, tid);
        self.log(WalRecord::Update {
            xid,
            key,
            unit_id: old_header.unit_id,
            payload: Bytes::copy_from_slice(payload),
            hidden: header.flags & FLAG_HIDDEN != 0,
        });
        self.commit();
        Ok(tid)
    }

    /// UPDATE: write a new version of `key` (MVCC: the old one goes
    /// dead). Flags — including the hidden attribute — carry over, as a
    /// SQL UPDATE that does not mention the attribute would behave.
    pub fn update(&mut self, key: u64, payload: &[u8]) -> Result<Tid> {
        self.new_version(key, payload, None)
    }

    /// The *hidden attribute* update: reversible inaccessibility. Keeps the
    /// payload, sets/clears the flag — at MVCC-update cost and bloat.
    pub fn set_hidden(&mut self, key: u64, hidden: bool) -> Result<Tid> {
        let Some((tid, header)) = self.find_visible(key) else {
            return Err(StorageError::KeyNotFound(key));
        };
        let disk_id = self.disk_page(tid.page);
        let page = self.buffer.page(&mut self.disk, disk_id);
        let (_, payload) = tuple::decode(page.tuple(tid.slot).expect("visible"));
        let payload = payload.to_vec();
        let flags = if hidden {
            header.flags | FLAG_HIDDEN
        } else {
            header.flags & !FLAG_HIDDEN
        };
        self.new_version(key, &payload, Some(flags))
    }

    /// DELETE: stamp `xmax`; bytes remain on the page until VACUUM.
    pub fn delete(&mut self, key: u64) -> Result<()> {
        let Some((tid, mut header)) = self.find_visible(key) else {
            return Err(StorageError::KeyNotFound(key));
        };
        let xid = self.txn.begin();
        header.xmax = xid;
        let disk_id = self.disk_page(tid.page);
        let page = self.buffer.page_mut(&mut self.disk, disk_id);
        let bytes = page.tuple_mut(tid.slot).expect("visible tuple");
        tuple::patch_header(bytes, &header);
        self.dead_pages.insert(tid.page);
        self.log(WalRecord::Delete {
            xid,
            key,
            unit_id: header.unit_id,
        });
        self.live = self.live.saturating_sub(1);
        self.dead += 1;
        self.commit();
        Ok(())
    }

    /// Sequential scan over visible, non-hidden tuples.
    pub fn seq_scan(&mut self, mut f: impl FnMut(u64, u64, &[u8])) {
        let snap = self.txn.snapshot();
        let model = self.clock.model().clone();
        for pos in 0..self.pages.len() {
            let disk_id = self.pages[pos];
            let page = self.buffer.page_seq(&mut self.disk, disk_id);
            // Collect to avoid borrowing page across the callback.
            let mut rows: Vec<(u64, u64, Vec<u8>)> = Vec::new();
            let mut live_seen = 0u64;
            let mut dead_seen = 0u64;
            for (slot, state) in page.slots() {
                if state != SlotState::Normal {
                    continue;
                }
                let bytes = page.tuple(slot).expect("normal slot");
                let (header, payload) = tuple::decode(bytes);
                if snap.visible(&header) && !header.is_hidden() {
                    live_seen += 1;
                    rows.push((header.key, header.unit_id, payload.to_vec()));
                } else {
                    dead_seen += 1;
                }
            }
            self.clock
                .charge_nanos(model.tuple_cpu * live_seen + model.dead_tuple_skip * dead_seen);
            Meter::bump(&self.meter.tuples_scanned, live_seen);
            Meter::bump(&self.meter.dead_tuples_skipped, dead_seen);
            for (key, unit, payload) in rows {
                f(key, unit, &payload);
            }
        }
    }

    /// Lazy VACUUM: reclaim dead tuples in place, clean index entries.
    /// Only pages flagged in the visibility map are visited (all-visible
    /// pages are skipped for free, as PostgreSQL does).
    pub fn vacuum(&mut self) -> VacuumStats {
        let horizon = self.txn.vacuum_horizon();
        let xid = self.txn.begin();
        let mut stats = VacuumStats::default();
        let candidates: Vec<u32> = std::mem::take(&mut self.dead_pages).into_iter().collect();
        for pos in candidates {
            let pos = pos as usize;
            let disk_id = self.pages[pos];
            // First pass: find dead versions, remember their index entries.
            let mut to_remove: Vec<(u64, Tid)> = Vec::new();
            {
                let page = self.buffer.page_seq(&mut self.disk, disk_id);
                for (slot, state) in page.slots() {
                    if state != SlotState::Normal {
                        continue;
                    }
                    let (header, _) = tuple::decode(page.tuple(slot).expect("normal"));
                    if horizon.dead_for_all(&header) {
                        to_remove.push((
                            header.key,
                            Tid {
                                page: pos as u32,
                                slot,
                            },
                        ));
                    }
                }
            }
            stats.pages_scanned += 1;
            if to_remove.is_empty() {
                continue;
            }
            let page = self.buffer.page_mut(&mut self.disk, disk_id);
            for (_, tid) in &to_remove {
                page.mark_dead(tid.slot);
            }
            let (reclaimed, wiped) = page.vacuum();
            let free = page.free_space();
            stats.tuples_reclaimed += reclaimed;
            stats.bytes_wiped += wiped;
            self.fsm.set(pos as u32, free);
            // Vacuum writes its cleaned pages back sequentially (ring
            // buffer), rather than leaving them for random write-back.
            let cleaned = self
                .buffer
                .page(&mut self.disk, disk_id)
                .as_bytes()
                .to_vec();
            self.disk.write_page_seq(disk_id, &cleaned);
            self.buffer.mark_clean(disk_id);
            for (key, tid) in to_remove {
                if self.index.remove(key, tid) {
                    stats.index_entries_removed += 1;
                }
            }
        }
        self.dead = self.dead.saturating_sub(stats.tuples_reclaimed as u64);
        self.log(WalRecord::Vacuum { xid, full: false });
        self.commit();
        stats
    }

    /// VACUUM FULL: rewrite the table compactly into fresh pages, zero the
    /// old ones (their content survives only as drive remanence), rebuild
    /// the index.
    pub fn vacuum_full(&mut self) -> VacuumStats {
        // Write through first: the rewrite must observe (and the zeroing
        // must physically overwrite) the real on-disk state.
        self.buffer.flush_all(&mut self.disk);
        let horizon = self.txn.vacuum_horizon();
        let xid = self.txn.begin();
        let mut stats = VacuumStats {
            pages_scanned: self.pages.len(),
            ..VacuumStats::default()
        };
        // Collect live tuples.
        let mut live: Vec<Vec<u8>> = Vec::new();
        let mut moved_bytes = 0u64;
        for pos in 0..self.pages.len() {
            let disk_id = self.pages[pos];
            let page = self.buffer.page_seq(&mut self.disk, disk_id);
            for (slot, state) in page.slots() {
                if state != SlotState::Normal {
                    continue;
                }
                let bytes = page.tuple(slot).expect("normal");
                let (header, _) = tuple::decode(bytes);
                if horizon.dead_for_all(&header) {
                    stats.tuples_reclaimed += 1;
                    stats.bytes_wiped += bytes.len();
                } else {
                    moved_bytes += bytes.len() as u64;
                    live.push(bytes.to_vec());
                }
            }
        }
        Meter::bump(&self.meter.compaction_bytes, moved_bytes);
        self.clock
            .charge_nanos(self.clock.model().compaction_per_byte * moved_bytes);
        // Zero old pages (file-level erase; drive remanence persists).
        let old_pages = std::mem::take(&mut self.pages);
        for disk_id in &old_pages {
            self.buffer.discard(*disk_id);
            self.disk
                .write_page(*disk_id, &vec![0u8; crate::page::PAGE_SIZE]);
            self.retired_pages.push(*disk_id);
        }
        // Write live tuples into fresh pages.
        self.fsm = FreeSpaceMap::new();
        self.index.clear();
        let mut current = Page::new();
        let flush_page = |db: &mut HeapDb, page: &mut Page| {
            let disk_id = db.disk.allocate();
            db.disk.write_page(disk_id, page.as_bytes());
            db.pages.push(disk_id);
            db.fsm.add_page(page.free_space());
            *page = Page::new();
        };
        for bytes in &live {
            let slot = match current.insert(bytes) {
                Some(s) => s,
                None => {
                    flush_page(self, &mut current);
                    current.insert(bytes).expect("fresh page fits tuple")
                }
            };
            let (header, _) = tuple::decode(bytes);
            let pos = self.pages.len() as u32; // current page flushes at this position
            self.index.insert(header.key, Tid { page: pos, slot });
        }
        if current.slot_count() > 0 {
            flush_page(self, &mut current);
        }
        self.dead = 0;
        self.dead_pages.clear();
        self.log(WalRecord::Vacuum { xid, full: true });
        self.commit();
        stats.index_entries_removed = stats.tuples_reclaimed;
        stats
    }

    /// Checkpoint: flush dirty buffers so the disk matches the logical
    /// state (forensics and recovery both start from here).
    pub fn checkpoint(&mut self) {
        self.config.fault.hit(CrashPoint::Checkpoint);
        self.buffer.flush_all(&mut self.disk);
        self.wal.append(WalRecord::Checkpoint);
        self.wal.flush();
    }

    /// Sanitise the drive: multi-pass overwrite of all current and retired
    /// pages' free regions and remanence. The table's live content is
    /// untouched (live pages are rewritten from their logical content).
    pub fn sanitize_drive(&mut self, passes: u32) {
        self.checkpoint();
        // Retired pages: hard-wipe.
        let retired = std::mem::take(&mut self.retired_pages);
        for disk_id in retired {
            self.disk.sanitize_page(disk_id, passes);
        }
        // Live pages: rewrite in place to destroy remanence of previous
        // generations, then sanitize-and-restore.
        for pos in 0..self.pages.len() {
            let disk_id = self.pages[pos];
            let content = self
                .buffer
                .page(&mut self.disk, disk_id)
                .as_bytes()
                .to_vec();
            self.disk.sanitize_page(disk_id, passes);
            self.disk.write_page(disk_id, &content);
            // The restore write must not itself create remanence of zeros —
            // it does not, since the sanitized state was all-zero.
        }
    }

    /// Recycle the WAL: drop everything before the latest checkpoint
    /// (the data files already reflect it). Crash recovery then starts
    /// from the checkpointed disk image plus the WAL tail, as real systems
    /// do. Returns the number of records dropped.
    pub fn recycle_wal(&mut self) -> usize {
        match self.wal.last_checkpoint() {
            Some(lsn) => self.wal.truncate_before(lsn),
            None => 0,
        }
    }

    /// Scrub one unit's WAL payloads (permanent deletion's log step).
    pub fn scrub_wal_unit(&mut self, unit: u64) -> usize {
        self.config.fault.hit(CrashPoint::PurgeUnit);
        self.wal.scrub_unit(unit)
    }

    /// Table statistics.
    pub fn stats(&self) -> HeapStats {
        HeapStats {
            pages: self.pages.len(),
            live_tuples: self.live,
            dead_tuples: self.dead,
            disk_bytes: (self.pages.len() * crate::page::PAGE_SIZE) as u64,
            index_bytes: self.index.size_bytes(),
            wal_bytes: self.wal.bytes(),
        }
    }

    /// The underlying disk (forensics).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Mutable access to the underlying disk (deferred sector crypto).
    pub fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    /// The WAL (forensics, recovery).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The shared meter.
    pub fn meter(&self) -> &Arc<Meter> {
        &self.meter
    }

    /// Rebuild a heap from a WAL (crash recovery). Logical replay: inserts,
    /// updates and deletes are re-executed in LSN order.
    pub fn recover(
        wal_records: Vec<WalRecord>,
        config: HeapConfig,
        clock: SimClock,
        meter: Arc<Meter>,
    ) -> HeapDb {
        let mut db = HeapDb::new(config, clock, meter);
        for rec in wal_records {
            match rec {
                WalRecord::Insert {
                    key,
                    unit_id,
                    payload,
                    ..
                } => {
                    let _ = db.insert(key, unit_id, &payload);
                }
                WalRecord::Update {
                    key,
                    payload,
                    hidden,
                    ..
                } => {
                    let flags = if hidden { FLAG_HIDDEN } else { 0 };
                    let _ = db.new_version(key, &payload, Some(flags));
                }
                WalRecord::Delete { key, .. } => {
                    let _ = db.delete(key);
                }
                WalRecord::Vacuum { full: true, .. } => {
                    let _ = db.vacuum_full();
                }
                WalRecord::Vacuum { full: false, .. } => {
                    let _ = db.vacuum();
                }
                WalRecord::Checkpoint => {}
            }
        }
        db.checkpoint();
        db
    }

    /// Clone the retained WAL records (to feed [`HeapDb::recover`]).
    pub fn wal_records(&self) -> Vec<WalRecord> {
        self.wal.iter().map(|(_, r)| r.clone()).collect()
    }

    /// Simulate a crash: drop all cached (unflushed) pages.
    pub fn crash(&mut self) {
        self.buffer.crash();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> HeapDb {
        HeapDb::default_single()
    }

    #[test]
    fn insert_read_roundtrip() {
        let mut db = mk();
        db.insert(1, 100, b"alice-data").unwrap();
        db.insert(2, 101, b"bob-data").unwrap();
        assert_eq!(db.read(1, false).unwrap(), b"alice-data");
        assert_eq!(db.read(2, false).unwrap(), b"bob-data");
        assert_eq!(db.read(3, false), None);
        assert_eq!(db.unit_of(1), Some(100));
        assert_eq!(db.stats().live_tuples, 2);
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut db = mk();
        db.insert(1, 100, b"a").unwrap();
        assert_eq!(db.insert(1, 100, b"b"), Err(StorageError::DuplicateKey(1)));
    }

    #[test]
    fn delete_hides_from_reads_but_bytes_remain() {
        let mut db = mk();
        db.insert(1, 100, b"sensitive-payload").unwrap();
        db.checkpoint();
        db.delete(1).unwrap();
        assert_eq!(db.read(1, false), None);
        db.checkpoint();
        // DELETE leaves residual bytes on the page.
        assert!(
            !db.disk().scan_raw(b"sensitive-payload").is_empty(),
            "dead tuple bytes must persist before vacuum"
        );
        assert_eq!(db.stats().dead_tuples, 1);
    }

    #[test]
    fn vacuum_reclaims_and_wipes() {
        let mut db = mk();
        db.insert(1, 100, b"sensitive-payload").unwrap();
        db.delete(1).unwrap();
        let stats = db.vacuum();
        assert_eq!(stats.tuples_reclaimed, 1);
        assert!(stats.bytes_wiped > 0);
        assert_eq!(stats.index_entries_removed, 1);
        db.checkpoint();
        assert!(
            db.disk().scan_raw(b"sensitive-payload").is_empty(),
            "vacuum wipes page residuals"
        );
        // But the WAL still remembers!
        assert!(
            !db.wal().scan(b"sensitive-payload").is_empty(),
            "WAL retains the payload (the paper's log-retention hazard)"
        );
        assert_eq!(db.stats().dead_tuples, 0);
    }

    #[test]
    fn update_creates_dead_version() {
        let mut db = mk();
        db.insert(1, 100, b"version-one").unwrap();
        db.update(1, b"version-two").unwrap();
        assert_eq!(db.read(1, false).unwrap(), b"version-two");
        assert_eq!(db.stats().dead_tuples, 1);
        db.checkpoint();
        assert!(
            !db.disk().scan_raw(b"version-one").is_empty(),
            "old version bytes persist until vacuum"
        );
        db.vacuum();
        db.checkpoint();
        assert!(db.disk().scan_raw(b"version-one").is_empty());
        assert_eq!(db.read(1, false).unwrap(), b"version-two");
    }

    #[test]
    fn hidden_attribute_is_reversible() {
        let mut db = mk();
        db.insert(1, 100, b"pii").unwrap();
        db.set_hidden(1, true).unwrap();
        assert_eq!(db.read(1, false), None, "hidden from normal reads");
        assert_eq!(
            db.read(1, true).unwrap(),
            b"pii",
            "controller still sees it"
        );
        db.set_hidden(1, false).unwrap();
        assert_eq!(db.read(1, false).unwrap(), b"pii", "restored");
        // Two hidden-flag updates = two dead versions (tombstone bloat).
        assert_eq!(db.stats().dead_tuples, 2);
    }

    #[test]
    fn vacuum_full_compacts_and_zeroes_old_pages() {
        let mut db = mk();
        for i in 0..2000u64 {
            db.insert(i, i, format!("payload-{i:05}").as_bytes())
                .unwrap();
        }
        for i in 0..1000u64 {
            db.delete(i).unwrap();
        }
        let pages_before = db.stats().pages;
        let stats = db.vacuum_full();
        assert_eq!(stats.tuples_reclaimed, 1000);
        let s = db.stats();
        assert!(s.pages < pages_before, "table shrank");
        assert_eq!(s.dead_tuples, 0);
        // Reads still work after index rebuild.
        for i in 1000..2000u64 {
            assert_eq!(
                db.read(i, false).unwrap(),
                format!("payload-{i:05}").as_bytes()
            );
        }
        for i in 0..1000u64 {
            assert_eq!(db.read(i, false), None);
        }
        // File-level residuals gone; drive remanence remains.
        assert!(db.disk().scan_raw(b"payload-00003").is_empty());
        assert!(
            !db.disk().scan_remanent(b"payload-00003").is_empty(),
            "vacuum full leaves drive remanence (needs sanitisation)"
        );
    }

    #[test]
    fn sanitize_drive_destroys_remanence() {
        let mut db = mk();
        db.insert(1, 100, b"ghost-payload").unwrap();
        db.delete(1).unwrap();
        db.vacuum_full();
        assert!(!db.disk().scan_remanent(b"ghost-payload").is_empty());
        db.sanitize_drive(3);
        assert!(db.disk().scan_remanent(b"ghost-payload").is_empty());
        assert!(db.disk().scan_raw(b"ghost-payload").is_empty());
    }

    #[test]
    fn seq_scan_sees_only_visible_unhidden() {
        let mut db = mk();
        db.insert(1, 100, b"a").unwrap();
        db.insert(2, 101, b"b").unwrap();
        db.insert(3, 102, b"c").unwrap();
        db.delete(2).unwrap();
        db.set_hidden(3, true).unwrap();
        let mut seen = Vec::new();
        db.seq_scan(|k, _, _| seen.push(k));
        seen.sort_unstable();
        assert_eq!(seen, vec![1]);
    }

    #[test]
    fn dead_tuples_slow_scans_until_vacuumed() {
        let mut db = mk();
        for i in 0..500u64 {
            db.insert(i, i, &[7u8; 64]).unwrap();
        }
        for i in 0..400u64 {
            db.delete(i).unwrap();
        }
        let clock = db.clock().clone();
        let t0 = clock.now();
        db.seq_scan(|_, _, _| {});
        let bloated = clock.now().since(t0);
        db.vacuum();
        let t1 = clock.now();
        db.seq_scan(|_, _, _| {});
        let clean = clock.now().since(t1);
        assert!(
            bloated > clean,
            "bloated scan {bloated:?} should exceed clean scan {clean:?}"
        );
    }

    #[test]
    fn wal_recovery_restores_state() {
        let mut db = mk();
        db.insert(1, 100, b"keep-me").unwrap();
        db.insert(2, 101, b"delete-me").unwrap();
        db.update(1, b"keep-me-v2").unwrap();
        db.delete(2).unwrap();
        db.crash(); // unflushed buffers lost
        let records = db.wal_records();
        let recovered = HeapDb::recover(
            records,
            HeapConfig::default(),
            SimClock::commodity(),
            Arc::new(Meter::new()),
        );
        let mut r = recovered;
        assert_eq!(r.read(1, false).unwrap(), b"keep-me-v2");
        assert_eq!(r.read(2, false), None);
    }

    #[test]
    fn reinsert_after_delete_and_vacuum() {
        let mut db = mk();
        db.insert(1, 100, b"first-life").unwrap();
        db.delete(1).unwrap();
        db.vacuum();
        db.insert(1, 200, b"second-life").unwrap();
        assert_eq!(db.read(1, false).unwrap(), b"second-life");
        assert_eq!(db.unit_of(1), Some(200));
    }

    #[test]
    fn reinsert_after_delete_without_vacuum() {
        let mut db = mk();
        db.insert(1, 100, b"first").unwrap();
        db.delete(1).unwrap();
        db.insert(1, 200, b"second").unwrap();
        assert_eq!(db.read(1, false).unwrap(), b"second");
    }

    #[test]
    fn encrypted_disk_hides_residuals() {
        let config = HeapConfig {
            disk_passphrase: Some(b"luks-pass".to_vec()),
            ..HeapConfig::default()
        };
        let mut db = HeapDb::new(config, SimClock::commodity(), Arc::new(Meter::new()));
        db.insert(1, 100, b"plaintext-pii").unwrap();
        db.checkpoint();
        assert!(
            db.disk().scan_raw(b"plaintext-pii").is_empty(),
            "sector encryption keeps plaintext off the disk"
        );
        assert_eq!(db.read(1, false).unwrap(), b"plaintext-pii");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        #[test]
        fn heap_matches_reference_map(
            ops in proptest::collection::vec((0u64..40, 0u8..4, proptest::collection::vec(1u8..=255, 1..40)), 1..150)
        ) {
            let mut db = mk();
            let mut model: std::collections::HashMap<u64, Vec<u8>> = Default::default();
            for (i, (key, op, payload)) in ops.into_iter().enumerate() {
                match op {
                    0 => {
                        let r = db.insert(key, key, &payload);
                        if let std::collections::hash_map::Entry::Vacant(e) = model.entry(key) {
                            proptest::prop_assert!(r.is_ok());
                            e.insert(payload);
                        } else {
                            proptest::prop_assert!(r.is_err());
                        }
                    }
                    1 => {
                        let r = db.update(key, &payload);
                        if let std::collections::hash_map::Entry::Occupied(mut e) = model.entry(key) {
                            proptest::prop_assert!(r.is_ok());
                            e.insert(payload);
                        } else {
                            proptest::prop_assert!(r.is_err());
                        }
                    }
                    2 => {
                        let r = db.delete(key);
                        proptest::prop_assert_eq!(r.is_ok(), model.remove(&key).is_some());
                    }
                    _ => {
                        if i % 3 == 0 {
                            db.vacuum();
                        }
                    }
                }
            }
            for (k, v) in &model {
                proptest::prop_assert_eq!(db.read(*k, false).unwrap(), v.clone());
            }
            let mut scanned = 0usize;
            db.seq_scan(|_, _, _| scanned += 1);
            proptest::prop_assert_eq!(scanned, model.len());
        }
    }
}
