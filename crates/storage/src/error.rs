//! Storage-layer errors.

/// Errors surfaced by the storage engines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// The requested key does not exist (or is not visible).
    KeyNotFound(u64),
    /// The key already exists (primary-key violation).
    DuplicateKey(u64),
    /// A tuple larger than a page was offered.
    TupleTooLarge {
        /// Requested payload size.
        size: usize,
        /// Maximum size a page can hold.
        max: usize,
    },
    /// A page id outside the allocated file.
    PageOutOfBounds(u32),
    /// WAL replay found a corrupt or truncated record.
    WalCorrupt(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::KeyNotFound(k) => write!(f, "key {k} not found"),
            StorageError::DuplicateKey(k) => write!(f, "key {k} already exists"),
            StorageError::TupleTooLarge { size, max } => {
                write!(f, "tuple of {size} bytes exceeds page capacity {max}")
            }
            StorageError::PageOutOfBounds(p) => write!(f, "page {p} out of bounds"),
            StorageError::WalCorrupt(msg) => write!(f, "WAL corrupt: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Storage result alias.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            format!("{}", StorageError::KeyNotFound(5)),
            "key 5 not found"
        );
        assert!(format!(
            "{}",
            StorageError::TupleTooLarge {
                size: 9000,
                max: 8000
            }
        )
        .contains("9000"));
    }
}
