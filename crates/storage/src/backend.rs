//! The pluggable storage-backend contract the compliance layer runs over.
//!
//! Data-CASE's central claim is that regulation groundings must hold
//! *independently of the underlying data processing system*. This module
//! is that claim made into a Rust trait: [`StorageBackend`] names the
//! workload surface (insert/read/update/delete/hide/scan) **and** the
//! compliance hooks every grounding plan needs — maintenance that turns
//! logical deletes physical, per-unit purging of retained log/run copies,
//! drive sanitisation, and the forensic
//! [`scan_physical`](StorageBackend::scan_physical) view an independent
//! auditor uses to verify erasure evidence.
//!
//! Two substrates implement it:
//!
//! * [`HeapDb`] — the PostgreSQL-style MVCC heap. Deletes stamp `xmax`,
//!   maintenance is VACUUM / VACUUM FULL, hiding is the hidden-attribute
//!   update, logs are the WAL, sanitisation is a multi-pass drive wipe.
//! * [`LsmBackend`] — the Cassandra-style LSM tree. Deletes are
//!   tombstones, maintenance is compaction, hiding is a flagged value
//!   version, "log" copies are shadowed versions in older runs, purged by
//!   rewriting the runs.
//!
//! ```
//! use datacase_storage::backend::{LsmBackend, MaintenanceDepth, StorageBackend};
//! use datacase_storage::heap::HeapDb;
//!
//! let backends: Vec<Box<dyn StorageBackend>> = vec![
//!     Box::new(HeapDb::default_single()),
//!     Box::new(LsmBackend::default_single()),
//! ];
//! for mut b in backends {
//!     b.insert(1, 100, b"subject-pii").unwrap();
//!     b.checkpoint(); // data at rest (page flushed / memtable flushed)
//!     b.delete(1).unwrap();
//!     b.checkpoint();
//!     // A logical delete physically retains the bytes on *both* backends…
//!     assert!(b.scan_physical(b"subject-pii").online(), "{:?}", b.kind());
//!     // …until maintenance plus a per-unit log purge ground the erasure.
//!     b.maintain(MaintenanceDepth::Full);
//!     b.purge_unit(100);
//!     b.sanitize(3);
//!     b.checkpoint();
//!     assert!(!b.scan_physical(b"subject-pii").any(), "{:?}", b.kind());
//! }
//! ```

use std::sync::Arc;

use datacase_sim::{Meter, SimClock};

use crate::error::{Result, StorageError};
use crate::forensic::{scan_heap, ForensicFindings};
use crate::heap::{HeapConfig, HeapDb};
use crate::lsm::{Entry, LsmConfig, LsmTree, RunManifest};
use crate::wal::WalRecord;

/// Which storage substrate backs an engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// PostgreSQL-style MVCC heap (pages + B+tree + WAL).
    Heap,
    /// Cassandra-style LSM tree (memtable + sorted runs + tombstones).
    Lsm,
}

impl BackendKind {
    /// Figure/bench label.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Heap => "heap",
            BackendKind::Lsm => "lsm",
        }
    }

    /// Both backends, heap first.
    pub const ALL: [BackendKind; 2] = [BackendKind::Heap, BackendKind::Lsm];
}

/// How deep a maintenance pass goes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaintenanceDepth {
    /// Reclaim what is cheap to reclaim: lazy VACUUM on the heap, a
    /// memtable flush (feeding the tiered-compaction trigger) on the LSM.
    Lazy,
    /// Physically rewrite: VACUUM FULL on the heap, full compaction
    /// (dropping tombstones and shadowed versions) on the LSM.
    Full,
}

/// What one maintenance pass reclaimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Dead tuples / shadowed-or-tombstone entries physically removed.
    pub reclaimed: usize,
    /// Payload bytes wiped or dropped from persistent storage.
    pub bytes_wiped: u64,
}

/// Backend statistics on a shared vocabulary, so space accounting and
/// benches read identically over heap and LSM.
#[derive(Clone, Copy, Debug, Default)]
pub struct BackendStats {
    /// Visible (live) entries, hidden ones included.
    pub live_entries: u64,
    /// Dead entries physically retained: unvacuumed tuples, shadowed
    /// versions, tombstones.
    pub dead_entries: u64,
    /// Bytes of persistent table/run storage.
    pub disk_bytes: u64,
    /// Index bytes (primary B+tree; LSM bloom filters are negligible).
    pub index_bytes: u64,
    /// Retained recovery-log bytes (heap WAL; the LSM has none — its runs
    /// *are* the log, counted in `disk_bytes`).
    pub log_bytes: u64,
    /// Storage segments: heap pages or LSM runs.
    pub segments: usize,
}

/// A backend's durable layer, cloned out for crash recovery.
///
/// What survives a crash differs per substrate — the heap's truth is its
/// retained WAL (replayed logically by [`HeapDb::recover`]), the LSM's is
/// its committed [`RunManifest`] (reopened by [`LsmTree::recover`]) — but
/// the chaos harness salvages either through one typed value, taken from
/// a wrecked engine via [`StorageBackend::durable_snapshot`] and turned
/// back into a live substrate with [`recover_backend`].
#[derive(Clone, Debug)]
pub enum DurableSnapshot {
    /// The heap's retained WAL records, in LSN order.
    Heap(Vec<WalRecord>),
    /// The LSM's last committed run manifest.
    Lsm(RunManifest),
}

impl DurableSnapshot {
    /// Which substrate this snapshot came from.
    pub fn kind(&self) -> BackendKind {
        match self {
            DurableSnapshot::Heap(_) => BackendKind::Heap,
            DurableSnapshot::Lsm(_) => BackendKind::Lsm,
        }
    }
}

/// Rebuild a live backend from a salvaged [`DurableSnapshot`]: WAL replay
/// for the heap, manifest reopen for the LSM. Purely deterministic — two
/// recoveries from the same snapshot yield identical physical state.
pub fn recover_backend(
    snapshot: DurableSnapshot,
    heap: HeapConfig,
    lsm: LsmConfig,
    clock: SimClock,
    meter: Arc<Meter>,
) -> Box<dyn StorageBackend> {
    match snapshot {
        DurableSnapshot::Heap(records) => Box::new(HeapDb::recover(records, heap, clock, meter)),
        DurableSnapshot::Lsm(manifest) => {
            Box::new(LsmBackend::recover(manifest, lsm, clock, meter))
        }
    }
}

/// The storage contract the compliant engine composes over.
///
/// Workload methods mirror the op vocabulary; compliance hooks are the
/// per-backend mechanics that erasure groundings (Table 1) map onto. A
/// backend must satisfy the erasure contract: after `delete` +
/// `maintain(Full)` + `purge_unit` + `sanitize`, [`scan_physical`] finds
/// no residual of the unit's payloads at any layer.
///
/// [`scan_physical`]: StorageBackend::scan_physical
pub trait StorageBackend: Send {
    /// Which substrate this is.
    fn kind(&self) -> BackendKind;

    /// INSERT a new record. Fails with [`StorageError::DuplicateKey`] on a
    /// visible duplicate.
    fn insert(&mut self, key: u64, unit_id: u64, payload: &[u8]) -> Result<()>;

    /// Point read. Hidden versions return `None` unless `include_hidden`.
    fn read(&mut self, key: u64, include_hidden: bool) -> Option<Vec<u8>>;

    /// UPDATE the payload (a new version; the hidden attribute carries
    /// over). Fails with [`StorageError::KeyNotFound`] if absent.
    fn update(&mut self, key: u64, payload: &[u8]) -> Result<()>;

    /// Logical DELETE: dead tuple on the heap, tombstone on the LSM. The
    /// payload bytes physically remain until maintenance.
    fn delete(&mut self, key: u64) -> Result<()>;

    /// Reversible inaccessibility: set/clear the hidden attribute by
    /// writing a new flagged version.
    fn set_hidden(&mut self, key: u64, hidden: bool) -> Result<()>;

    /// The unit id stored under `key`, hidden versions included.
    fn unit_of(&mut self, key: u64) -> Option<u64>;

    /// Sequential scan over visible, non-hidden records.
    fn seq_scan(&mut self, f: &mut dyn FnMut(u64, u64, &[u8]));

    // ------------------------------------------------------------------
    // Compliance hooks
    // ------------------------------------------------------------------

    /// Run a maintenance pass (the periodic half of a delete strategy).
    fn maintain(&mut self, depth: MaintenanceDepth) -> MaintenanceStats;

    /// Remove every retained copy of `unit_id` from log-shaped storage:
    /// scrub the unit's WAL payloads (heap) or rewrite all runs without
    /// the unit's entries (LSM). Intended to run *after* the unit's rows
    /// are deleted (the permanent-deletion plan); on a still-live unit
    /// the heap leaves the row in place while the LSM's run rewrite
    /// necessarily removes it too. Returns entries/records removed.
    fn purge_unit(&mut self, unit_id: u64) -> usize;

    /// Destroy sub-file remanence with a multi-pass overwrite. The LSM
    /// has no remanence layer below its runs, so this is a no-op there.
    fn sanitize(&mut self, passes: u32);

    /// Flush volatile state so the persistent layers match the logical
    /// state (forensics and recovery both start from here).
    fn checkpoint(&mut self);

    /// Drop recovery-log records already covered by a checkpoint.
    /// Returns the number of records dropped.
    fn recycle_logs(&mut self) -> usize;

    /// Forensic scan of every persistent layer for `needle` — the
    /// independent-observer view that makes erasure evidence measurable.
    /// Callers should [`checkpoint`](StorageBackend::checkpoint) first.
    fn scan_physical(&self, needle: &[u8]) -> ForensicFindings;

    /// Statistics on the shared vocabulary.
    fn stats(&self) -> BackendStats;

    /// Clone out the substrate's durable layer (retained WAL / committed
    /// run manifest) for crash recovery. See [`DurableSnapshot`].
    fn durable_snapshot(&self) -> DurableSnapshot;

    // ------------------------------------------------------------------
    // Deferred sector crypto (pipeline offload; optional)
    // ------------------------------------------------------------------

    /// Switch deferred sector-layer encryption on or off, if this
    /// substrate encrypts at the sector layer (the heap's LUKS shim).
    /// While on, encrypted page writes store plaintext and queue the
    /// host AES for [`take_pending_sector_crypto`]; turning it off seals
    /// any remainder inline. Simulated charges never move. Default: no-op
    /// (substrates without sector encryption have nothing to defer).
    ///
    /// [`take_pending_sector_crypto`]: StorageBackend::take_pending_sector_crypto
    fn set_deferred_sector_crypto(&mut self, _on: bool) {}

    /// Hand out every sector whose encryption was deferred, as
    /// self-contained jobs for worker threads. Every job's ciphertext
    /// must come back via [`store_sector_ciphertext`] before any other
    /// access to this backend. Default: empty.
    ///
    /// [`store_sector_ciphertext`]: StorageBackend::store_sector_ciphertext
    fn take_pending_sector_crypto(&mut self) -> Vec<crate::disk::PendingSectorCrypto> {
        Vec::new()
    }

    /// Store the ciphertext computed for a job from
    /// [`take_pending_sector_crypto`](StorageBackend::take_pending_sector_crypto).
    /// Default: unreachable (no jobs are ever handed out).
    fn store_sector_ciphertext(&mut self, _sector: u32, _data: Vec<u8>) {}
}

// ---------------------------------------------------------------------
// Heap implementation
// ---------------------------------------------------------------------

impl StorageBackend for HeapDb {
    fn kind(&self) -> BackendKind {
        BackendKind::Heap
    }

    fn insert(&mut self, key: u64, unit_id: u64, payload: &[u8]) -> Result<()> {
        HeapDb::insert(self, key, unit_id, payload).map(|_| ())
    }

    fn read(&mut self, key: u64, include_hidden: bool) -> Option<Vec<u8>> {
        HeapDb::read(self, key, include_hidden)
    }

    fn update(&mut self, key: u64, payload: &[u8]) -> Result<()> {
        HeapDb::update(self, key, payload).map(|_| ())
    }

    fn delete(&mut self, key: u64) -> Result<()> {
        HeapDb::delete(self, key)
    }

    fn set_hidden(&mut self, key: u64, hidden: bool) -> Result<()> {
        HeapDb::set_hidden(self, key, hidden).map(|_| ())
    }

    fn unit_of(&mut self, key: u64) -> Option<u64> {
        HeapDb::unit_of(self, key)
    }

    fn seq_scan(&mut self, f: &mut dyn FnMut(u64, u64, &[u8])) {
        HeapDb::seq_scan(self, |k, u, p| f(k, u, p));
    }

    fn maintain(&mut self, depth: MaintenanceDepth) -> MaintenanceStats {
        let stats = match depth {
            MaintenanceDepth::Lazy => self.vacuum(),
            MaintenanceDepth::Full => self.vacuum_full(),
        };
        MaintenanceStats {
            reclaimed: stats.tuples_reclaimed,
            bytes_wiped: stats.bytes_wiped as u64,
        }
    }

    fn purge_unit(&mut self, unit_id: u64) -> usize {
        self.scrub_wal_unit(unit_id)
    }

    fn sanitize(&mut self, passes: u32) {
        self.sanitize_drive(passes);
    }

    fn checkpoint(&mut self) {
        HeapDb::checkpoint(self);
    }

    fn recycle_logs(&mut self) -> usize {
        self.recycle_wal()
    }

    fn scan_physical(&self, needle: &[u8]) -> ForensicFindings {
        scan_heap(self, needle)
    }

    fn stats(&self) -> BackendStats {
        let s = HeapDb::stats(self);
        BackendStats {
            live_entries: s.live_tuples,
            dead_entries: s.dead_tuples,
            disk_bytes: s.disk_bytes,
            index_bytes: s.index_bytes,
            log_bytes: s.wal_bytes,
            segments: s.pages,
        }
    }

    fn durable_snapshot(&self) -> DurableSnapshot {
        DurableSnapshot::Heap(self.wal_records())
    }

    fn set_deferred_sector_crypto(&mut self, on: bool) {
        self.disk_mut().set_deferred_crypto(on);
    }

    fn take_pending_sector_crypto(&mut self) -> Vec<crate::disk::PendingSectorCrypto> {
        // Only pages that already crossed the disk boundary (evictions,
        // checkpoints, maintenance) can be pending — dirty pages still in
        // the buffer pool have not been written in serial mode either.
        self.disk_mut().take_pending_crypto()
    }

    fn store_sector_ciphertext(&mut self, sector: u32, data: Vec<u8>) {
        self.disk_mut().store_ciphertext(sector, data);
    }
}

// ---------------------------------------------------------------------
// LSM implementation
// ---------------------------------------------------------------------

/// First value byte of every [`LsmBackend`] entry: version flags.
const LSM_FLAG_HIDDEN: u8 = 0x01;

/// The LSM tree behind the [`StorageBackend`] contract.
///
/// The raw [`LsmTree`] has no hidden attribute, so the adapter grounds
/// reversible inaccessibility the way a column store would: every stored
/// value carries a one-byte flag header, and hiding writes a new flagged
/// version — at ordinary write cost and with ordinary version bloat,
/// mirroring the heap's MVCC hidden-update mechanics.
pub struct LsmBackend {
    tree: LsmTree,
    live: u64,
}

impl std::fmt::Debug for LsmBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmBackend")
            .field("live", &self.live)
            .field("tree", &self.tree)
            .finish()
    }
}

impl LsmBackend {
    /// A fresh LSM backend with the given config, clock and meter.
    pub fn new(config: LsmConfig, clock: SimClock, meter: Arc<Meter>) -> LsmBackend {
        LsmBackend {
            tree: LsmTree::new(config, clock, meter),
            live: 0,
        }
    }

    /// Default config on a fresh clock/meter (tests, examples).
    pub fn default_single() -> LsmBackend {
        LsmBackend {
            tree: LsmTree::default_single(),
            live: 0,
        }
    }

    /// Rebuild a backend from a durable [`RunManifest`] (crash recovery).
    /// The live-row counter is recomputed from the recovered runs, so it
    /// reflects exactly what survived.
    pub fn recover(
        manifest: RunManifest,
        config: LsmConfig,
        clock: SimClock,
        meter: Arc<Meter>,
    ) -> LsmBackend {
        let mut backend = LsmBackend {
            tree: LsmTree::recover(manifest, config, clock, meter),
            live: 0,
        };
        backend.live = backend.tree.range_units(0, u64::MAX).len() as u64;
        backend
    }

    /// The wrapped tree (ablations, forensics).
    pub fn tree(&self) -> &LsmTree {
        &self.tree
    }

    /// Mutable access to the wrapped tree.
    pub fn tree_mut(&mut self) -> &mut LsmTree {
        &mut self.tree
    }

    fn encode(hidden: bool, payload: &[u8]) -> Vec<u8> {
        let mut v = Vec::with_capacity(1 + payload.len());
        v.push(if hidden { LSM_FLAG_HIDDEN } else { 0 });
        v.extend_from_slice(payload);
        v
    }

    fn decode(value: &[u8]) -> (bool, &[u8]) {
        match value.split_first() {
            Some((flags, payload)) => (flags & LSM_FLAG_HIDDEN != 0, payload),
            None => (false, &[]),
        }
    }

    /// The current live version of `key`: (unit, hidden, payload). The
    /// flag byte is stripped in place from the entry's already-owned
    /// value, so point operations pay one payload copy, not two.
    fn live_version(&mut self, key: u64) -> Option<(u64, bool, Vec<u8>)> {
        match self.tree.entry(key)? {
            Entry::Put {
                unit_id, mut value, ..
            } => {
                let hidden = value.first().is_some_and(|f| f & LSM_FLAG_HIDDEN != 0);
                if !value.is_empty() {
                    value.drain(..1);
                }
                Some((unit_id, hidden, value))
            }
            Entry::Tombstone { .. } => None,
        }
    }
}

impl StorageBackend for LsmBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Lsm
    }

    fn insert(&mut self, key: u64, unit_id: u64, payload: &[u8]) -> Result<()> {
        if self.live_version(key).is_some() {
            return Err(StorageError::DuplicateKey(key));
        }
        self.tree.put(key, unit_id, &Self::encode(false, payload));
        self.live += 1;
        Ok(())
    }

    fn read(&mut self, key: u64, include_hidden: bool) -> Option<Vec<u8>> {
        let (_, hidden, payload) = self.live_version(key)?;
        if hidden && !include_hidden {
            return None;
        }
        Some(payload)
    }

    fn update(&mut self, key: u64, payload: &[u8]) -> Result<()> {
        let Some((unit, hidden, _)) = self.live_version(key) else {
            return Err(StorageError::KeyNotFound(key));
        };
        // The hidden attribute carries over, as on the heap.
        self.tree.put(key, unit, &Self::encode(hidden, payload));
        Ok(())
    }

    fn delete(&mut self, key: u64) -> Result<()> {
        let Some((unit, _, _)) = self.live_version(key) else {
            return Err(StorageError::KeyNotFound(key));
        };
        self.tree.delete(key, unit);
        self.live = self.live.saturating_sub(1);
        Ok(())
    }

    fn set_hidden(&mut self, key: u64, hidden: bool) -> Result<()> {
        let Some((unit, _, payload)) = self.live_version(key) else {
            return Err(StorageError::KeyNotFound(key));
        };
        self.tree.put(key, unit, &Self::encode(hidden, &payload));
        Ok(())
    }

    fn unit_of(&mut self, key: u64) -> Option<u64> {
        self.live_version(key).map(|(unit, _, _)| unit)
    }

    fn seq_scan(&mut self, f: &mut dyn FnMut(u64, u64, &[u8])) {
        for (key, unit, value) in self.tree.range_units(0, u64::MAX) {
            let (hidden, payload) = Self::decode(&value);
            if !hidden {
                f(key, unit, payload);
            }
        }
    }

    fn maintain(&mut self, depth: MaintenanceDepth) -> MaintenanceStats {
        let before = self.tree.stats();
        match depth {
            MaintenanceDepth::Lazy => self.tree.flush(),
            MaintenanceDepth::Full => self.tree.compact_all(),
        }
        let after = self.tree.stats();
        let entries_before = before.run_entries + before.memtable_entries;
        MaintenanceStats {
            reclaimed: entries_before.saturating_sub(after.run_entries + after.memtable_entries),
            bytes_wiped: before.run_bytes.saturating_sub(after.run_bytes),
        }
    }

    fn purge_unit(&mut self, unit_id: u64) -> usize {
        // A run rewrite cannot keep "just the live version": any rows of
        // the unit still live are removed with its retained copies, so
        // account for them before the purge desyncs the live counter.
        let live_of_unit = self
            .tree
            .range_units(0, u64::MAX)
            .iter()
            .filter(|(_, unit, _)| *unit == unit_id)
            .count() as u64;
        self.live = self.live.saturating_sub(live_of_unit);
        self.tree.purge_unit(unit_id)
    }

    fn sanitize(&mut self, _passes: u32) {
        // Runs are rewritten whole by compaction/purge; there is no
        // sub-run remanence layer to overwrite.
    }

    fn checkpoint(&mut self) {
        self.tree.flush();
    }

    fn recycle_logs(&mut self) -> usize {
        0 // no WAL: the runs are the log, recycled by compaction
    }

    fn scan_physical(&self, needle: &[u8]) -> ForensicFindings {
        ForensicFindings {
            lsm_entries: self.tree.scan_physical(needle),
            ..ForensicFindings::default()
        }
    }

    fn stats(&self) -> BackendStats {
        let s = self.tree.stats();
        let total = (s.run_entries + s.memtable_entries) as u64;
        BackendStats {
            live_entries: self.live,
            dead_entries: total.saturating_sub(self.live),
            disk_bytes: s.run_bytes,
            index_bytes: 0,
            log_bytes: 0,
            segments: s.runs,
        }
    }

    fn durable_snapshot(&self) -> DurableSnapshot {
        DurableSnapshot::Lsm(self.tree.manifest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> Vec<Box<dyn StorageBackend>> {
        vec![
            Box::new(HeapDb::default_single()),
            Box::new(LsmBackend::default_single()),
        ]
    }

    #[test]
    fn workload_surface_parity() {
        for mut b in both() {
            let kind = b.kind();
            b.insert(1, 100, b"alpha").unwrap();
            b.insert(2, 200, b"beta").unwrap();
            assert_eq!(
                b.insert(1, 100, b"dup"),
                Err(StorageError::DuplicateKey(1)),
                "{kind:?}"
            );
            assert_eq!(b.read(1, false).unwrap(), b"alpha", "{kind:?}");
            b.update(1, b"alpha-v2").unwrap();
            assert_eq!(b.read(1, false).unwrap(), b"alpha-v2", "{kind:?}");
            assert_eq!(b.unit_of(2), Some(200), "{kind:?}");
            b.delete(2).unwrap();
            assert_eq!(b.read(2, false), None, "{kind:?}");
            assert_eq!(
                b.update(2, b"x"),
                Err(StorageError::KeyNotFound(2)),
                "{kind:?}"
            );
            assert_eq!(b.delete(2), Err(StorageError::KeyNotFound(2)), "{kind:?}");
            // Reinsert after delete works on both substrates.
            b.insert(2, 201, b"beta-2").unwrap();
            assert_eq!(b.unit_of(2), Some(201), "{kind:?}");
        }
    }

    #[test]
    fn hidden_attribute_parity() {
        for mut b in both() {
            let kind = b.kind();
            b.insert(7, 70, b"pii").unwrap();
            b.set_hidden(7, true).unwrap();
            assert_eq!(b.read(7, false), None, "{kind:?}: hidden from reads");
            assert_eq!(
                b.read(7, true).unwrap(),
                b"pii",
                "{kind:?}: controller view"
            );
            assert_eq!(b.unit_of(7), Some(70), "{kind:?}: unit still resolvable");
            // Updates preserve the hidden attribute, as SQL UPDATE would.
            b.update(7, b"pii-v2").unwrap();
            assert_eq!(b.read(7, false), None, "{kind:?}");
            b.set_hidden(7, false).unwrap();
            assert_eq!(b.read(7, false).unwrap(), b"pii-v2", "{kind:?}: restored");
        }
    }

    #[test]
    fn seq_scan_skips_deleted_and_hidden() {
        for mut b in both() {
            let kind = b.kind();
            b.insert(1, 10, b"a").unwrap();
            b.insert(2, 20, b"b").unwrap();
            b.insert(3, 30, b"c").unwrap();
            b.delete(2).unwrap();
            b.set_hidden(3, true).unwrap();
            let mut seen = Vec::new();
            b.seq_scan(&mut |k, u, p| seen.push((k, u, p.to_vec())));
            assert_eq!(seen, vec![(1, 10, b"a".to_vec())], "{kind:?}");
        }
    }

    #[test]
    fn erasure_contract_holds_on_both_backends() {
        for mut b in both() {
            let kind = b.kind();
            b.insert(1, 100, b"erase-contract-target").unwrap();
            // Data at rest first: an LSM delete before any flush would
            // supersede the value in the memtable itself.
            b.checkpoint();
            b.delete(1).unwrap();
            b.checkpoint();
            assert!(
                b.scan_physical(b"erase-contract-target").online(),
                "{kind:?}: logical delete must physically retain"
            );
            b.maintain(MaintenanceDepth::Full);
            b.purge_unit(100);
            b.sanitize(3);
            b.checkpoint();
            let f = b.scan_physical(b"erase-contract-target");
            assert!(!f.any(), "{kind:?}: {}", f.describe());
        }
    }

    #[test]
    fn stats_track_live_and_dead() {
        for mut b in both() {
            let kind = b.kind();
            for i in 0..20u64 {
                b.insert(i, i, &[0x5A; 32]).unwrap();
            }
            for i in 0..5u64 {
                b.delete(i).unwrap();
            }
            b.checkpoint();
            let s = b.stats();
            assert_eq!(s.live_entries, 15, "{kind:?}");
            assert!(s.dead_entries >= 5, "{kind:?}: {s:?}");
            assert!(s.disk_bytes > 0, "{kind:?}");
            assert!(s.segments > 0, "{kind:?}");
            let m = b.maintain(MaintenanceDepth::Full);
            assert!(m.reclaimed >= 5, "{kind:?}: {m:?}");
            assert_eq!(b.stats().dead_entries, 0, "{kind:?}");
        }
    }

    #[test]
    fn lsm_purge_of_live_unit_keeps_stats_in_sync() {
        let mut b = LsmBackend::default_single();
        b.insert(1, 100, b"unit-a-live").unwrap();
        b.insert(2, 200, b"unit-b-live").unwrap();
        b.checkpoint();
        // Purging a still-live unit removes its rows on the LSM (a run
        // rewrite keeps nothing); the live counter must follow.
        assert!(b.purge_unit(100) > 0);
        assert_eq!(b.read(1, false), None);
        assert_eq!(b.stats().live_entries, 1);
        assert_eq!(b.read(2, false).unwrap(), b"unit-b-live");
    }

    #[test]
    fn lazy_maintenance_is_cheaper_than_full() {
        // Same mutation stream; the lazy pass must charge less simulated
        // time than the full pass on both substrates.
        for kind in BackendKind::ALL {
            let mk = |depth: MaintenanceDepth| -> datacase_sim::time::Dur {
                let clock = SimClock::commodity();
                let meter = Arc::new(Meter::new());
                let mut b: Box<dyn StorageBackend> = match kind {
                    BackendKind::Heap => Box::new(HeapDb::new(
                        crate::heap::HeapConfig::default(),
                        clock.clone(),
                        meter,
                    )),
                    BackendKind::Lsm => {
                        Box::new(LsmBackend::new(LsmConfig::default(), clock.clone(), meter))
                    }
                };
                for i in 0..300u64 {
                    b.insert(i, i, &[1u8; 64]).unwrap();
                }
                for i in 0..100u64 {
                    b.delete(i).unwrap();
                }
                let t0 = clock.now();
                b.maintain(depth);
                clock.now().since(t0)
            };
            let lazy = mk(MaintenanceDepth::Lazy);
            let full = mk(MaintenanceDepth::Full);
            assert!(lazy <= full, "{kind:?}: lazy {lazy:?} vs full {full:?}");
        }
    }
}
