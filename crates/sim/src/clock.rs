//! The simulated clock and the work meter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cost::CostModel;
use crate::time::{Dur, Ts};

/// A shareable logical clock accumulating simulated nanoseconds.
///
/// Substrates `charge` durations as they do work; harnesses read
/// [`SimClock::now`] before and after a workload to obtain its simulated
/// completion time. Cloning shares the underlying counter, so one clock can
/// be threaded through storage, policy, audit and crypto layers.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
    model: Arc<CostModel>,
}

impl SimClock {
    /// A clock at time zero with the given cost model.
    pub fn new(model: CostModel) -> SimClock {
        SimClock {
            nanos: Arc::new(AtomicU64::new(0)),
            model: Arc::new(model),
        }
    }

    /// A clock with the default commodity cost model.
    pub fn commodity() -> SimClock {
        SimClock::new(CostModel::commodity())
    }

    /// The shared cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Current simulated time.
    pub fn now(&self) -> Ts {
        Ts(self.nanos.load(Ordering::Relaxed))
    }

    /// Advance the clock by `d` (charging simulated work).
    pub fn charge(&self, d: Dur) {
        if d.0 != 0 {
            self.nanos.fetch_add(d.0, Ordering::Relaxed);
        }
    }

    /// Advance by a raw nanosecond count.
    pub fn charge_nanos(&self, ns: u64) {
        if ns != 0 {
            self.nanos.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Jump the clock forward so that `now() >= at` (used to model idle
    /// waiting, e.g. letting a retention deadline pass). Does nothing if the
    /// clock is already past `at`.
    pub fn advance_to(&self, at: Ts) {
        let mut cur = self.nanos.load(Ordering::Relaxed);
        while cur < at.0 {
            match self
                .nanos
                .compare_exchange_weak(cur, at.0, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    /// Simulated time elapsed since `start`.
    pub fn elapsed_since(&self, start: Ts) -> Dur {
        self.now().since(start)
    }
}

/// Counters of mechanical work, reported alongside simulated times.
///
/// Every counter is monotonically increasing and atomically updated, so one
/// `Meter` can be shared by all substrates of an engine instance.
#[derive(Debug, Default)]
pub struct Meter {
    /// Pages read from simulated disk (buffer-pool misses).
    pub pages_read_disk: AtomicU64,
    /// Pages served from the buffer pool.
    pub pages_read_cached: AtomicU64,
    /// Pages written back to simulated disk.
    pub pages_written: AtomicU64,
    /// Live tuples examined by scans.
    pub tuples_scanned: AtomicU64,
    /// Dead tuples / tombstones skipped by scans.
    pub dead_tuples_skipped: AtomicU64,
    /// Index probes performed.
    pub index_probes: AtomicU64,
    /// Bytes pushed through AES.
    pub crypto_bytes: AtomicU64,
    /// Log records appended.
    pub log_records: AtomicU64,
    /// Bytes appended to logs.
    pub log_bytes: AtomicU64,
    /// Policy checks evaluated (coarse + fine).
    pub policy_checks: AtomicU64,
    /// Operations denied by policy enforcement.
    pub denials: AtomicU64,
    /// Bytes rewritten by vacuum-full / compaction.
    pub compaction_bytes: AtomicU64,
    /// WAL records appended.
    pub wal_records: AtomicU64,
}

/// An owned snapshot of a [`Meter`], for diffing before/after a workload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MeterSnapshot {
    /// See [`Meter::pages_read_disk`].
    pub pages_read_disk: u64,
    /// See [`Meter::pages_read_cached`].
    pub pages_read_cached: u64,
    /// See [`Meter::pages_written`].
    pub pages_written: u64,
    /// See [`Meter::tuples_scanned`].
    pub tuples_scanned: u64,
    /// See [`Meter::dead_tuples_skipped`].
    pub dead_tuples_skipped: u64,
    /// See [`Meter::index_probes`].
    pub index_probes: u64,
    /// See [`Meter::crypto_bytes`].
    pub crypto_bytes: u64,
    /// See [`Meter::log_records`].
    pub log_records: u64,
    /// See [`Meter::log_bytes`].
    pub log_bytes: u64,
    /// See [`Meter::policy_checks`].
    pub policy_checks: u64,
    /// See [`Meter::denials`].
    pub denials: u64,
    /// See [`Meter::compaction_bytes`].
    pub compaction_bytes: u64,
    /// See [`Meter::wal_records`].
    pub wal_records: u64,
}

impl Meter {
    /// A fresh meter with all counters at zero.
    pub fn new() -> Meter {
        Meter::default()
    }

    /// Add `n` to a counter.
    pub fn bump(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Capture the current values of all counters.
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot {
            pages_read_disk: self.pages_read_disk.load(Ordering::Relaxed),
            pages_read_cached: self.pages_read_cached.load(Ordering::Relaxed),
            pages_written: self.pages_written.load(Ordering::Relaxed),
            tuples_scanned: self.tuples_scanned.load(Ordering::Relaxed),
            dead_tuples_skipped: self.dead_tuples_skipped.load(Ordering::Relaxed),
            index_probes: self.index_probes.load(Ordering::Relaxed),
            crypto_bytes: self.crypto_bytes.load(Ordering::Relaxed),
            log_records: self.log_records.load(Ordering::Relaxed),
            log_bytes: self.log_bytes.load(Ordering::Relaxed),
            policy_checks: self.policy_checks.load(Ordering::Relaxed),
            denials: self.denials.load(Ordering::Relaxed),
            compaction_bytes: self.compaction_bytes.load(Ordering::Relaxed),
            wal_records: self.wal_records.load(Ordering::Relaxed),
        }
    }
}

impl MeterSnapshot {
    /// Component-wise saturating sum `self + other` — the aggregation step
    /// for per-shard meters. Sharded drivers give every worker its own
    /// [`Meter`] (so counters never race across threads) and merge the
    /// snapshots afterwards; addition is commutative and associative, so
    /// the aggregate is deterministic regardless of worker interleaving.
    pub fn merge(&self, other: &MeterSnapshot) -> MeterSnapshot {
        MeterSnapshot {
            pages_read_disk: self.pages_read_disk.saturating_add(other.pages_read_disk),
            pages_read_cached: self
                .pages_read_cached
                .saturating_add(other.pages_read_cached),
            pages_written: self.pages_written.saturating_add(other.pages_written),
            tuples_scanned: self.tuples_scanned.saturating_add(other.tuples_scanned),
            dead_tuples_skipped: self
                .dead_tuples_skipped
                .saturating_add(other.dead_tuples_skipped),
            index_probes: self.index_probes.saturating_add(other.index_probes),
            crypto_bytes: self.crypto_bytes.saturating_add(other.crypto_bytes),
            log_records: self.log_records.saturating_add(other.log_records),
            log_bytes: self.log_bytes.saturating_add(other.log_bytes),
            policy_checks: self.policy_checks.saturating_add(other.policy_checks),
            denials: self.denials.saturating_add(other.denials),
            compaction_bytes: self.compaction_bytes.saturating_add(other.compaction_bytes),
            wal_records: self.wal_records.saturating_add(other.wal_records),
        }
    }

    /// Component-wise saturating difference `self - earlier`.
    pub fn diff(&self, earlier: &MeterSnapshot) -> MeterSnapshot {
        MeterSnapshot {
            pages_read_disk: self.pages_read_disk.saturating_sub(earlier.pages_read_disk),
            pages_read_cached: self
                .pages_read_cached
                .saturating_sub(earlier.pages_read_cached),
            pages_written: self.pages_written.saturating_sub(earlier.pages_written),
            tuples_scanned: self.tuples_scanned.saturating_sub(earlier.tuples_scanned),
            dead_tuples_skipped: self
                .dead_tuples_skipped
                .saturating_sub(earlier.dead_tuples_skipped),
            index_probes: self.index_probes.saturating_sub(earlier.index_probes),
            crypto_bytes: self.crypto_bytes.saturating_sub(earlier.crypto_bytes),
            log_records: self.log_records.saturating_sub(earlier.log_records),
            log_bytes: self.log_bytes.saturating_sub(earlier.log_bytes),
            policy_checks: self.policy_checks.saturating_sub(earlier.policy_checks),
            denials: self.denials.saturating_sub(earlier.denials),
            compaction_bytes: self
                .compaction_bytes
                .saturating_sub(earlier.compaction_bytes),
            wal_records: self.wal_records.saturating_sub(earlier.wal_records),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates_charges() {
        let c = SimClock::commodity();
        assert_eq!(c.now(), Ts::ZERO);
        c.charge(Dur::from_millis(5));
        c.charge_nanos(500);
        assert_eq!(c.now(), Ts(5_000_500));
    }

    #[test]
    fn cloned_clock_shares_time() {
        let a = SimClock::commodity();
        let b = a.clone();
        b.charge(Dur::from_secs(1));
        assert_eq!(a.now(), Ts::from_secs(1));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = SimClock::commodity();
        c.charge(Dur::from_secs(10));
        c.advance_to(Ts::from_secs(5));
        assert_eq!(c.now(), Ts::from_secs(10));
        c.advance_to(Ts::from_secs(20));
        assert_eq!(c.now(), Ts::from_secs(20));
    }

    #[test]
    fn meter_snapshot_diff() {
        let m = Meter::new();
        Meter::bump(&m.pages_read_disk, 3);
        let s1 = m.snapshot();
        Meter::bump(&m.pages_read_disk, 4);
        Meter::bump(&m.denials, 1);
        let s2 = m.snapshot();
        let d = s2.diff(&s1);
        assert_eq!(d.pages_read_disk, 4);
        assert_eq!(d.denials, 1);
        assert_eq!(d.pages_written, 0);
    }

    #[test]
    fn meter_snapshot_merge_sums_counters() {
        let a = Meter::new();
        Meter::bump(&a.pages_read_disk, 3);
        Meter::bump(&a.crypto_bytes, 100);
        let b = Meter::new();
        Meter::bump(&b.pages_read_disk, 4);
        Meter::bump(&b.log_records, 7);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.pages_read_disk, 7);
        assert_eq!(m.crypto_bytes, 100);
        assert_eq!(m.log_records, 7);
        assert_eq!(m.denials, 0);
        // Merge is commutative: shard join order cannot change the total.
        assert_eq!(m, b.snapshot().merge(&a.snapshot()));
    }

    #[test]
    fn zero_charge_is_free() {
        let c = SimClock::commodity();
        c.charge(Dur::ZERO);
        assert_eq!(c.now(), Ts::ZERO);
    }
}
