#![warn(missing_docs)]
//! # datacase-sim
//!
//! Deterministic simulation substrate for the Data-CASE reproduction.
//!
//! The paper's evaluation reports wall-clock completion times measured on a
//! specific VM. Absolute numbers are testbed artifacts; the *shapes* of the
//! figures come from counts of mechanical work (pages read, tuples scanned,
//! bytes encrypted, log records appended). This crate provides:
//!
//! * [`clock::SimClock`] — a logical clock that accumulates simulated
//!   nanoseconds as work is charged to it;
//! * [`cost::CostModel`] — per-operation costs calibrated to commodity
//!   hardware constants, so simulated completion times land in realistic
//!   magnitudes;
//! * [`clock::Meter`] — event counters (page I/O, tuple CPU, crypto bytes …)
//!   that benches report next to times;
//! * [`rng`] — seeded RNG helpers so every experiment is reproducible;
//! * [`fault`] — the deterministic crash-injection plane the chaos
//!   harness arms (free when disabled);
//! * [`zipf::Zipfian`] — the YCSB-style skewed key sampler;
//! * [`stats`] — Welford online stats and percentile helpers;
//! * [`report`] — minimal fixed-width / markdown / CSV table rendering used
//!   by the `repro` harness (no serialization dependency needed).

pub mod clock;
pub mod cost;
pub mod fault;
pub mod report;
pub mod rng;
pub mod stats;
pub mod zipf;

pub use clock::{Meter, MeterSnapshot, SimClock};
pub use cost::CostModel;
pub use fault::{CrashPoint, CrashSignal, FaultInjector};
pub use time::{Dur, Ts};

pub mod time {
    //! Logical simulated time.
    //!
    //! All Data-CASE timestamps (policy windows `t_b..t_f`, action-history
    //! times, erasure deadlines) and all simulated durations use the same
    //! axis: nanoseconds since simulation start.

    use std::fmt;
    use std::ops::{Add, AddAssign, Sub};

    /// A point on the simulated time axis (nanoseconds since simulation start).
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
    pub struct Ts(pub u64);

    /// A span of simulated time (nanoseconds).
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
    pub struct Dur(pub u64);

    impl Ts {
        /// The origin of simulated time.
        pub const ZERO: Ts = Ts(0);
        /// The far future; used for open-ended policy windows.
        pub const MAX: Ts = Ts(u64::MAX);

        /// Construct from whole simulated seconds.
        pub fn from_secs(s: u64) -> Ts {
            Ts(s.saturating_mul(1_000_000_000))
        }
        /// Construct from whole simulated milliseconds.
        pub fn from_millis(ms: u64) -> Ts {
            Ts(ms.saturating_mul(1_000_000))
        }
        /// Construct from whole simulated microseconds.
        pub fn from_micros(us: u64) -> Ts {
            Ts(us.saturating_mul(1_000))
        }
        /// This instant expressed in fractional seconds.
        pub fn as_secs_f64(self) -> f64 {
            self.0 as f64 / 1e9
        }
        /// This instant expressed in fractional milliseconds.
        pub fn as_millis_f64(self) -> f64 {
            self.0 as f64 / 1e6
        }
        /// Saturating difference `self - earlier`.
        pub fn since(self, earlier: Ts) -> Dur {
            Dur(self.0.saturating_sub(earlier.0))
        }
        /// True if `self` lies in the closed interval `[from, until]`.
        pub fn within(self, from: Ts, until: Ts) -> bool {
            from <= self && self <= until
        }
    }

    impl Dur {
        /// The zero-length span.
        pub const ZERO: Dur = Dur(0);

        /// Construct from whole simulated seconds.
        pub fn from_secs(s: u64) -> Dur {
            Dur(s.saturating_mul(1_000_000_000))
        }
        /// Construct from whole simulated milliseconds.
        pub fn from_millis(ms: u64) -> Dur {
            Dur(ms.saturating_mul(1_000_000))
        }
        /// Construct from whole simulated microseconds.
        pub fn from_micros(us: u64) -> Dur {
            Dur(us.saturating_mul(1_000))
        }
        /// Construct from whole simulated nanoseconds.
        pub fn from_nanos(ns: u64) -> Dur {
            Dur(ns)
        }
        /// This span in fractional seconds.
        pub fn as_secs_f64(self) -> f64 {
            self.0 as f64 / 1e9
        }
        /// This span in fractional milliseconds.
        pub fn as_millis_f64(self) -> f64 {
            self.0 as f64 / 1e6
        }
        /// This span in fractional minutes.
        pub fn as_mins_f64(self) -> f64 {
            self.0 as f64 / 60e9
        }
        /// Scale the span by an integer factor, saturating.
        pub fn scaled(self, n: u64) -> Dur {
            Dur(self.0.saturating_mul(n))
        }
    }

    impl Add<Dur> for Ts {
        type Output = Ts;
        fn add(self, d: Dur) -> Ts {
            Ts(self.0.saturating_add(d.0))
        }
    }
    impl AddAssign<Dur> for Ts {
        fn add_assign(&mut self, d: Dur) {
            self.0 = self.0.saturating_add(d.0);
        }
    }
    impl Sub<Ts> for Ts {
        type Output = Dur;
        fn sub(self, rhs: Ts) -> Dur {
            Dur(self.0.saturating_sub(rhs.0))
        }
    }
    impl Add<Dur> for Dur {
        type Output = Dur;
        fn add(self, d: Dur) -> Dur {
            Dur(self.0.saturating_add(d.0))
        }
    }
    impl AddAssign<Dur> for Dur {
        fn add_assign(&mut self, d: Dur) {
            self.0 = self.0.saturating_add(d.0);
        }
    }

    impl fmt::Debug for Ts {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Ts({:.6}s)", self.as_secs_f64())
        }
    }
    impl fmt::Display for Ts {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
    impl fmt::Debug for Dur {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Dur({:.6}s)", self.as_secs_f64())
        }
    }
    impl fmt::Display for Dur {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            if self.0 >= 60_000_000_000 {
                write!(f, "{:.2}min", self.as_mins_f64())
            } else if self.0 >= 1_000_000_000 {
                write!(f, "{:.3}s", self.as_secs_f64())
            } else {
                write!(f, "{:.3}ms", self.as_millis_f64())
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn ts_constructors_agree() {
            assert_eq!(Ts::from_secs(2), Ts(2_000_000_000));
            assert_eq!(Ts::from_millis(2_000), Ts::from_secs(2));
            assert_eq!(Ts::from_micros(2_000_000), Ts::from_secs(2));
        }

        #[test]
        fn ts_arithmetic_saturates() {
            assert_eq!(Ts::MAX + Dur::from_secs(1), Ts::MAX);
            assert_eq!(Ts::ZERO.since(Ts::from_secs(5)), Dur::ZERO);
        }

        #[test]
        fn within_is_closed_interval() {
            let t = Ts::from_secs(5);
            assert!(t.within(Ts::from_secs(5), Ts::from_secs(5)));
            assert!(t.within(Ts::ZERO, Ts::MAX));
            assert!(!t.within(Ts::from_secs(6), Ts::MAX));
            assert!(!t.within(Ts::ZERO, Ts::from_secs(4)));
        }

        #[test]
        fn dur_display_picks_unit() {
            assert_eq!(format!("{}", Dur::from_millis(5)), "5.000ms");
            assert_eq!(format!("{}", Dur::from_secs(5)), "5.000s");
            assert_eq!(format!("{}", Dur::from_secs(120)), "2.00min");
        }

        #[test]
        fn sub_gives_duration() {
            assert_eq!(Ts::from_secs(7) - Ts::from_secs(3), Dur::from_secs(4));
        }
    }
}
