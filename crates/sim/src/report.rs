//! Minimal table rendering for the `repro` harness and EXPERIMENTS.md.
//!
//! We deliberately avoid a serialization dependency: figures are reported as
//! fixed-width text tables (for the terminal), pipe-markdown tables (for
//! EXPERIMENTS.md), and CSV (for external plotting).

use std::fmt::Write as _;

/// A simple rectangular table builder.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The data rows, in insertion order (tests enumerate figure
    /// contents through this).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Render as a fixed-width text table.
    pub fn render_text(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line: String = w
            .iter()
            .map(|n| "-".repeat(n + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:>width$} ", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let _ = writeln!(out, "{line}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "**{}**", self.title);
        let _ = writeln!(out);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Render as CSV (headers first; naive quoting of commas).
    pub fn render_csv(&self) -> String {
        let quote = |s: &String| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(quote).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(quote).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Format a float with three significant decimals, trimming noise.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a byte count in a human unit (B/KiB/MiB/GiB).
pub fn bytes_human(n: u64) -> String {
    const KIB: f64 = 1024.0;
    let x = n as f64;
    if x >= KIB * KIB * KIB {
        format!("{:.2} GiB", x / (KIB * KIB * KIB))
    } else if x >= KIB * KIB {
        format!("{:.2} MiB", x / (KIB * KIB))
    } else if x >= KIB {
        format!("{:.2} KiB", x / KIB)
    } else {
        format!("{n} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["k", "v"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["bb".into(), "2".into()]);
        t
    }

    #[test]
    fn text_render_aligns_columns() {
        let s = sample().render_text();
        assert!(s.contains("== demo =="));
        assert!(s.contains(" bb "));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn markdown_render_has_separator() {
        let s = sample().render_markdown();
        assert!(s.contains("|---|---|"));
        assert!(s.contains("| a | 1 |"));
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("q", &["a"]);
        t.row(vec!["x,y".into()]);
        let s = t.render_csv();
        assert!(s.contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn bytes_human_units() {
        assert_eq!(bytes_human(512), "512 B");
        assert_eq!(bytes_human(2048), "2.00 KiB");
        assert_eq!(bytes_human(3 * 1024 * 1024), "3.00 MiB");
    }
}
