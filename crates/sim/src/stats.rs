//! Online statistics and percentile helpers for benchmark reporting.

/// Welford online mean/variance accumulator.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (unbiased; 0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

/// Percentile of a sample using linear interpolation between order
/// statistics. `q` in `[0, 100]`. Sorts a copy; fine for report-sized data.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let q = q.clamp(0.0, 100.0) / 100.0;
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// A fixed-bucket histogram over `[0, bound)` with overflow bucket.
#[derive(Clone, Debug)]
pub struct Histogram {
    bound: f64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Histogram with `buckets` equal-width buckets over `[0, bound)`.
    pub fn new(bound: f64, buckets: usize) -> Histogram {
        assert!(bound > 0.0 && buckets > 0);
        Histogram {
            bound,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x >= self.bound || x < 0.0 {
            self.overflow += 1;
            return;
        }
        let idx = ((x / self.bound) * self.buckets.len() as f64) as usize;
        let idx = idx.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations outside `[0, bound)`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate quantile from bucket midpoints (`q` in `[0,100]`).
    pub fn approx_percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q.clamp(0.0, 100.0) / 100.0 * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        let width = self.bound / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i as f64 + 0.5) * width;
            }
        }
        self.bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased sample variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_of_empty_is_nan() {
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        h.record(42.0);
        assert_eq!(h.count(), 11);
        assert_eq!(h.overflow(), 1);
        assert!(h.buckets().iter().all(|&c| c == 1));
        let med = h.approx_percentile(50.0);
        assert!((med - 5.5).abs() <= 1.0, "median approx {med}");
    }
}
