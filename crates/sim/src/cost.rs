//! Per-operation cost constants for the simulated clock.
//!
//! The constants are calibrated to commodity hardware (SATA SSD + one core
//! of a desktop CPU, roughly the paper's Ryzen 5 VM): a random page read
//! from "disk" costs ~80 µs, a buffered page hit ~1 µs, an fsync ~500 µs,
//! AES at a few cycles/byte, and so on. The *ratios* between the constants
//! are what drive every figure's shape; the absolute scale just keeps
//! reported completion times in plausible units.

use crate::time::Dur;

/// Cost constants charged to a [`crate::clock::SimClock`] by the substrates.
///
/// All values are simulated nanoseconds (or nanoseconds per byte where
/// noted). Engines never invent their own constants — they ask the shared
/// `CostModel`, which makes ablations (e.g. "what if crypto were free?")
/// one-line configuration changes.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Random page read that misses the buffer pool (disk I/O).
    pub page_read_disk: u64,
    /// Sequential page read (scans, vacuum passes) — an order of magnitude
    /// cheaper than random I/O on both SSDs and spinning disks.
    pub page_read_seq: u64,
    /// Page read satisfied by the buffer pool.
    pub page_read_cached: u64,
    /// Page write-back to disk.
    pub page_write_disk: u64,
    /// Sequential page write (vacuum ring buffer, checkpoint batches).
    pub page_write_seq: u64,
    /// Durable log flush (group commit on NVMe-class storage).
    pub fsync: u64,
    /// CPU cost of examining one tuple (visibility check + copy).
    pub tuple_cpu: u64,
    /// CPU cost of skipping a dead tuple / tombstone during a scan.
    pub dead_tuple_skip: u64,
    /// One index probe step (B-tree node visit or hash bucket lookup).
    pub index_probe: u64,
    /// Inserting or deleting one index entry.
    pub index_maintain: u64,
    /// AES-128 cost per byte.
    pub aes128_per_byte: u64,
    /// AES-256 cost per byte (14 rounds vs 10 → ~1.4×).
    pub aes256_per_byte: u64,
    /// SHA-256 cost per byte.
    pub sha256_per_byte: u64,
    /// Fixed cost of appending one log record.
    pub log_append: u64,
    /// Additional log cost per payload byte.
    pub log_per_byte: u64,
    /// Coarse (role-based) policy check.
    pub policy_check_coarse: u64,
    /// Fine-grained per-tuple policy guard evaluation: one UDF-based guard
    /// in the rewritten query, PL/pgSQL invocation overhead included
    /// (Sieve-on-PostgreSQL reality — the reason P_SYS dominates
    /// read-heavy workloads in Figure 4b).
    pub policy_check_fine: u64,
    /// Extra join/lookup against a separate metadata table (per operation).
    pub metadata_join: u64,
    /// LSM: cost per byte moved during compaction.
    pub compaction_per_byte: u64,
    /// Bloom filter probe.
    pub bloom_probe: u64,
    /// Per-byte cost of a sanitisation overwrite pass.
    pub sanitize_per_byte: u64,
    /// Fixed transaction begin/commit bookkeeping.
    pub txn_overhead: u64,
}

impl CostModel {
    /// Calibration used by all experiments: commodity SSD + desktop CPU.
    pub fn commodity() -> CostModel {
        CostModel {
            page_read_disk: 80_000,
            page_read_seq: 8_000,
            page_read_cached: 1_000,
            page_write_disk: 100_000,
            page_write_seq: 15_000,
            fsync: 50_000,
            tuple_cpu: 250,
            dead_tuple_skip: 120,
            index_probe: 400,
            index_maintain: 900,
            aes128_per_byte: 3,
            aes256_per_byte: 4,
            sha256_per_byte: 5,
            log_append: 2_500,
            log_per_byte: 2,
            policy_check_coarse: 300,
            policy_check_fine: 10_000,
            metadata_join: 3_500,
            compaction_per_byte: 6,
            bloom_probe: 120,
            sanitize_per_byte: 12,
            txn_overhead: 1_500,
        }
    }

    /// A model where all cryptographic work is free — used by the
    /// crypto-cost ablation.
    pub fn free_crypto(mut self) -> CostModel {
        self.aes128_per_byte = 0;
        self.aes256_per_byte = 0;
        self.sha256_per_byte = 0;
        self
    }

    /// A model with a spinning-disk latency profile (an order of magnitude
    /// slower random I/O) — used to show figure shapes are I/O-robust.
    pub fn spinning_disk(mut self) -> CostModel {
        self.page_read_disk = 8_000_000;
        self.page_read_seq = 400_000;
        self.page_write_disk = 9_000_000;
        self.page_write_seq = 500_000;
        self.fsync = 10_000_000;
        self
    }

    /// Cost of encrypting/decrypting `n` bytes with AES of the given key
    /// size in bits (128 or 256; 192 priced between).
    pub fn aes_cost(&self, key_bits: u32, n: usize) -> Dur {
        let per = match key_bits {
            128 => self.aes128_per_byte,
            192 => self.aes128_per_byte + (self.aes256_per_byte - self.aes128_per_byte) / 2,
            _ => self.aes256_per_byte,
        };
        Dur(per.saturating_mul(n as u64))
    }

    /// Cost of hashing `n` bytes with SHA-256.
    pub fn sha_cost(&self, n: usize) -> Dur {
        Dur(self.sha256_per_byte.saturating_mul(n as u64))
    }

    /// Cost of appending one log record with an `n`-byte payload.
    pub fn log_cost(&self, n: usize) -> Dur {
        Dur(self.log_append + self.log_per_byte.saturating_mul(n as u64))
    }

    /// Cost of a sanitisation overwrite of `n` bytes, `passes` times.
    pub fn sanitize_cost(&self, n: usize, passes: u32) -> Dur {
        Dur(self
            .sanitize_per_byte
            .saturating_mul(n as u64)
            .saturating_mul(passes as u64))
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::commodity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aes256_costs_more_than_aes128() {
        let m = CostModel::commodity();
        assert!(m.aes_cost(256, 1024) > m.aes_cost(128, 1024));
        assert!(m.aes_cost(192, 1024) >= m.aes_cost(128, 1024));
        assert!(m.aes_cost(192, 1024) <= m.aes_cost(256, 1024));
    }

    #[test]
    fn disk_read_dominates_cache_hit() {
        let m = CostModel::commodity();
        assert!(m.page_read_disk >= 10 * m.page_read_cached);
        assert!(
            m.page_read_disk >= 5 * m.page_read_seq,
            "random >> sequential"
        );
        assert!(m.page_read_seq > m.page_read_cached);
    }

    #[test]
    fn fine_policy_check_dominates_coarse() {
        let m = CostModel::commodity();
        assert!(m.policy_check_fine > 5 * m.policy_check_coarse);
    }

    #[test]
    fn free_crypto_zeroes_crypto_only() {
        let m = CostModel::commodity().free_crypto();
        assert_eq!(m.aes_cost(256, 100), Dur(0));
        assert_eq!(m.sha_cost(100), Dur(0));
        assert_eq!(m.page_read_disk, CostModel::commodity().page_read_disk);
    }

    #[test]
    fn log_cost_is_affine_in_bytes() {
        let m = CostModel::commodity();
        let a = m.log_cost(0).0;
        let b = m.log_cost(100).0;
        assert_eq!(b - a, 100 * m.log_per_byte);
    }
}
