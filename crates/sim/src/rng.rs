//! Seeded randomness helpers.
//!
//! Every generator in the reproduction takes an explicit `u64` seed so runs
//! are bit-for-bit reproducible. We expose both a thin wrapper over
//! `rand::StdRng` and a dependency-free SplitMix64 for places (like page
//! fill patterns) where pulling in a full RNG would be overkill.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministically seeded standard RNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream label, so different
/// components of one experiment draw from independent streams.
pub fn child_seed(parent: u64, label: &str) -> u64 {
    let mut h = SplitMix64::new(parent ^ 0x9E37_79B9_7F4A_7C15);
    for b in label.bytes() {
        h.state = h.state.wrapping_add(b as u64);
        h.next_u64();
    }
    h.next_u64()
}

/// Minimal SplitMix64 PRNG (public-domain algorithm by Sebastiano Vigna).
///
/// Used for cheap deterministic byte patterns and seed derivation; workload
/// sampling uses [`seeded`] instead.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction; bias is negligible for our uses.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Fill a byte slice with pseudo-random data.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut chunks = out.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_reproducible() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn splitmix_known_sequence_is_stable() {
        let mut s = SplitMix64::new(0);
        let first = s.next_u64();
        let mut s2 = SplitMix64::new(0);
        assert_eq!(first, s2.next_u64());
        assert_ne!(s.next_u64(), first);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut s = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(s.next_below(10) < 10);
        }
    }

    #[test]
    fn child_seed_depends_on_label() {
        assert_ne!(child_seed(1, "a"), child_seed(1, "b"));
        assert_eq!(child_seed(1, "a"), child_seed(1, "a"));
        assert_ne!(child_seed(1, "a"), child_seed(2, "a"));
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut s = SplitMix64::new(3);
        let mut buf = [0u8; 13];
        s.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
