//! YCSB-style Zipfian and scrambled-Zipfian key samplers.
//!
//! The implementation follows Gray et al.'s rejection-free inverse-CDF
//! approximation as used by the original YCSB `ZipfianGenerator`, including
//! the incremental re-computation of `zeta(n)` when the item count grows.

use rand::Rng;

const ZIPF_CONSTANT: f64 = 0.99;

/// Zipfian sampler over `0..n` with YCSB's default skew (θ = 0.99).
#[derive(Clone, Debug)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    zeta_n: f64,
    zeta2: f64,
    alpha: f64,
    eta: f64,
}

impl Zipfian {
    /// Sampler over `0..items` with the default YCSB skew.
    pub fn new(items: u64) -> Zipfian {
        Zipfian::with_theta(items, ZIPF_CONSTANT)
    }

    /// Sampler over `0..items` with explicit skew θ in (0, 1).
    pub fn with_theta(items: u64, theta: f64) -> Zipfian {
        assert!(items > 0, "zipfian domain must be non-empty");
        assert!((0.0..1.0).contains(&theta), "theta must be in (0,1)");
        let zeta_n = Self::zeta(items, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        Zipfian {
            items,
            theta,
            zeta_n,
            zeta2,
            alpha,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of items in the domain.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Grow the domain to `items` (recomputing zeta incrementally).
    pub fn grow(&mut self, items: u64) {
        if items <= self.items {
            return;
        }
        self.zeta_n += ((self.items + 1)..=items)
            .map(|i| 1.0 / (i as f64).powf(self.theta))
            .sum::<f64>();
        self.items = items;
        self.eta =
            (1.0 - (2.0 / items as f64).powf(1.0 - self.theta)) / (1.0 - self.zeta2 / self.zeta_n);
    }

    /// Draw a rank in `0..items`; rank 0 is the hottest.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.items - 1)
    }
}

/// Scrambled Zipfian: Zipfian ranks passed through a stateless hash so hot
/// keys are spread across the key space (as YCSB does for its request
/// distribution).
#[derive(Clone, Debug)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Sampler over `0..items`.
    pub fn new(items: u64) -> ScrambledZipfian {
        ScrambledZipfian {
            inner: Zipfian::new(items),
        }
    }

    /// Draw a key in `0..items`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let rank = self.inner.sample(rng);
        fnv1a_64(rank) % self.inner.items()
    }
}

/// FNV-1a hash of a u64 (YCSB uses FNV for scrambling).
pub fn fnv1a_64(v: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipfian::new(1000);
        let mut rng = seeded(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn distribution_is_skewed_toward_low_ranks() {
        let z = Zipfian::new(1000);
        let mut rng = seeded(2);
        let mut head = 0u64;
        let n = 50_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // With theta=0.99 the hottest 10% of ranks should draw well over
        // half the samples.
        assert!(
            head as f64 / n as f64 > 0.55,
            "head share {}",
            head as f64 / n as f64
        );
    }

    #[test]
    fn scrambled_spreads_hot_keys() {
        let z = ScrambledZipfian::new(1000);
        let mut rng = seeded(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            seen.insert(z.sample(&mut rng));
        }
        // Scrambling must not collapse the domain.
        assert!(seen.len() > 100);
        for &k in &seen {
            assert!(k < 1000);
        }
    }

    #[test]
    fn grow_extends_domain() {
        let mut z = Zipfian::new(10);
        z.grow(1000);
        assert_eq!(z.items(), 1000);
        let mut rng = seeded(4);
        let any_large = (0..20_000).any(|_| z.sample(&mut rng) >= 10);
        assert!(any_large);
    }

    #[test]
    fn uniform_theta_zero_like_behaviour() {
        // Low theta should be much flatter than default.
        let flat = Zipfian::with_theta(1000, 0.01);
        let mut rng = seeded(5);
        let mut head = 0u64;
        let n = 50_000;
        for _ in 0..n {
            if flat.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        let share = head as f64 / n as f64;
        assert!(share < 0.35, "flat head share {share}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        let _ = Zipfian::new(0);
    }
}
