//! Deterministic fault injection: named crash points and the shared
//! injection plane the chaos harness arms.
//!
//! Every layer of the stack (engine pipeline stages, WAL append and
//! checkpoint boundaries, LSM compaction, mid-erasure key destruction and
//! unit purging) calls [`FaultInjector::hit`] at a named [`CrashPoint`].
//! The injector is an `Option<Arc<_>>`: the disabled default is a single
//! `None` check, so production and benchmark paths pay nothing.
//!
//! Two active modes exist:
//!
//! * **counting** ([`FaultInjector::counting`]) — record how often each
//!   crash point is reached during a run, without ever firing. The chaos
//!   harness uses a counting pass to discover which points a scenario
//!   exercises (and how many times) before arming them one by one.
//! * **armed** ([`FaultInjector::armed`]) — on the *n*-th arrival at one
//!   chosen point, fire exactly once by panicking with a [`CrashSignal`]
//!   payload. The harness catches the unwind, discards the wrecked
//!   engine, and rebuilds from durable state. A plane never fires twice,
//!   so recovery code running over the same taps cannot re-crash.
//!
//! Determinism: the plane holds no clocks and draws no randomness — which
//! hit fires is a pure function of `(point, nth)` and the deterministic
//! submission order, so a crash is replayable from the scenario seed
//! alone.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A named location where a crash can be injected.
///
/// Names are stable, kebab-case identifiers (`plan`, `wal-append`,
/// `destroy-key`, ...) used by the chaos DSL, `repro chaos`, and the docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Engine pipeline: after a batch is planned into spans/barriers.
    Plan,
    /// Engine pipeline: before a request's policy decision.
    Decide,
    /// Engine pipeline: before a span's payload work is applied.
    Apply,
    /// Engine pipeline: before deferred audit records are committed.
    Account,
    /// Storage: before a WAL record is appended.
    WalAppend,
    /// Storage: before a checkpoint (flush + WAL recycle) runs.
    Checkpoint,
    /// Erasure: before the unit's encryption key is destroyed.
    DestroyKey,
    /// Erasure: before a unit's rows are purged from the substrate.
    PurgeUnit,
    /// LSM: before a compaction merges runs.
    Compaction,
}

/// Number of distinct crash points.
pub const CRASH_POINTS: usize = 9;

impl CrashPoint {
    /// Every crash point, in declaration order.
    pub const ALL: [CrashPoint; CRASH_POINTS] = [
        CrashPoint::Plan,
        CrashPoint::Decide,
        CrashPoint::Apply,
        CrashPoint::Account,
        CrashPoint::WalAppend,
        CrashPoint::Checkpoint,
        CrashPoint::DestroyKey,
        CrashPoint::PurgeUnit,
        CrashPoint::Compaction,
    ];

    /// The point's stable, kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::Plan => "plan",
            CrashPoint::Decide => "decide",
            CrashPoint::Apply => "apply",
            CrashPoint::Account => "account",
            CrashPoint::WalAppend => "wal-append",
            CrashPoint::Checkpoint => "checkpoint",
            CrashPoint::DestroyKey => "destroy-key",
            CrashPoint::PurgeUnit => "purge-unit",
            CrashPoint::Compaction => "compaction",
        }
    }

    /// Parse a stable name back into a crash point.
    pub fn from_name(name: &str) -> Option<CrashPoint> {
        CrashPoint::ALL.into_iter().find(|p| p.name() == name)
    }

    fn index(self) -> usize {
        CrashPoint::ALL
            .iter()
            .position(|p| *p == self)
            .expect("every point is in ALL")
    }
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The panic payload an armed injector fires with.
///
/// Harnesses catch the unwind with `std::panic::catch_unwind` and
/// downcast the payload to distinguish an injected crash from a genuine
/// bug (any other payload must be propagated).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSignal {
    /// Where the crash fired.
    pub point: CrashPoint,
    /// Which arrival fired (1-based).
    pub hit: u64,
}

impl fmt::Display for CrashSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected crash at {} (hit {})", self.point, self.hit)
    }
}

#[derive(Debug)]
struct FaultPlane {
    counts: [AtomicU64; CRASH_POINTS],
    /// `None` = counting only; `Some((point, nth))` = fire on arrival
    /// number `nth` (1-based) at `point`.
    armed: Option<(CrashPoint, u64)>,
    fired: AtomicBool,
}

impl FaultPlane {
    fn new(armed: Option<(CrashPoint, u64)>) -> FaultPlane {
        FaultPlane {
            counts: Default::default(),
            armed,
            fired: AtomicBool::new(false),
        }
    }

    fn hit(&self, point: CrashPoint) {
        let n = self.counts[point.index()].fetch_add(1, Ordering::Relaxed) + 1;
        if let Some((armed, nth)) = self.armed {
            if armed == point && n == nth && !self.fired.swap(true, Ordering::Relaxed) {
                std::panic::panic_any(CrashSignal { point, hit: n });
            }
        }
    }
}

/// Handle to a shared fault-injection plane, threaded through engine and
/// storage configuration.
///
/// Clones share the same plane (it is an `Arc` inside), so arming one
/// injector arms every layer it was threaded into — exactly how a single
/// crash point can sit below the engine, inside the WAL, and inside the
/// LSM at once. The [`Default`] (and [`FaultInjector::disabled`]) handle
/// holds no plane at all: [`hit`](FaultInjector::hit) is one `None`
/// check, so the taps are free when chaos is off.
#[derive(Clone, Debug, Default)]
pub struct FaultInjector(Option<Arc<FaultPlane>>);

impl FaultInjector {
    /// The no-op injector every configuration defaults to.
    pub fn disabled() -> FaultInjector {
        FaultInjector(None)
    }

    /// An injector that counts arrivals at every crash point but never
    /// fires — the discovery pass of the chaos harness.
    pub fn counting() -> FaultInjector {
        FaultInjector(Some(Arc::new(FaultPlane::new(None))))
    }

    /// An injector that fires on the `nth` (1-based) arrival at `point`,
    /// exactly once, by panicking with a [`CrashSignal`].
    pub fn armed(point: CrashPoint, nth: u64) -> FaultInjector {
        FaultInjector(Some(Arc::new(FaultPlane::new(Some((point, nth.max(1)))))))
    }

    /// Is this handle attached to a plane at all?
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Record an arrival at `point`; panics with a [`CrashSignal`] if the
    /// plane is armed for this arrival. The disabled handle returns
    /// immediately.
    #[inline]
    pub fn hit(&self, point: CrashPoint) {
        if let Some(plane) = &self.0 {
            plane.hit(point);
        }
    }

    /// How many times `point` has been reached so far (0 for a disabled
    /// handle).
    pub fn count(&self, point: CrashPoint) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |p| p.counts[point.index()].load(Ordering::Relaxed))
    }

    /// Arrival counts for every crash point, in [`CrashPoint::ALL`] order.
    pub fn counts(&self) -> [u64; CRASH_POINTS] {
        let mut out = [0; CRASH_POINTS];
        for (slot, point) in out.iter_mut().zip(CrashPoint::ALL) {
            *slot = self.count(point);
        }
        out
    }

    /// Has the armed crash fired?
    pub fn fired(&self) -> bool {
        self.0
            .as_ref()
            .is_some_and(|p| p.fired.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for point in CrashPoint::ALL {
            assert_eq!(CrashPoint::from_name(point.name()), Some(point));
        }
        assert_eq!(CrashPoint::from_name("nonsense"), None);
    }

    #[test]
    fn disabled_injector_is_inert() {
        let f = FaultInjector::disabled();
        f.hit(CrashPoint::Plan);
        assert_eq!(f.count(CrashPoint::Plan), 0);
        assert!(!f.is_active());
        assert!(!f.fired());
    }

    #[test]
    fn counting_injector_counts_without_firing() {
        let f = FaultInjector::counting();
        for _ in 0..3 {
            f.hit(CrashPoint::WalAppend);
        }
        f.hit(CrashPoint::Checkpoint);
        assert_eq!(f.count(CrashPoint::WalAppend), 3);
        assert_eq!(f.count(CrashPoint::Checkpoint), 1);
        assert_eq!(f.count(CrashPoint::Plan), 0);
        assert!(!f.fired());
    }

    #[test]
    fn armed_injector_fires_on_nth_hit_exactly_once() {
        let f = FaultInjector::armed(CrashPoint::DestroyKey, 2);
        f.hit(CrashPoint::DestroyKey); // hit 1: no fire
        f.hit(CrashPoint::PurgeUnit); // other point: no fire
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f.hit(CrashPoint::DestroyKey); // hit 2: fires
        }))
        .expect_err("second hit must fire");
        let signal = panic
            .downcast_ref::<CrashSignal>()
            .expect("payload is a CrashSignal");
        assert_eq!(signal.point, CrashPoint::DestroyKey);
        assert_eq!(signal.hit, 2);
        assert!(f.fired());
        // Recovery runs over the same taps: no second fire.
        f.hit(CrashPoint::DestroyKey);
        assert_eq!(f.count(CrashPoint::DestroyKey), 3);
    }

    #[test]
    fn clones_share_one_plane() {
        let f = FaultInjector::counting();
        let g = f.clone();
        g.hit(CrashPoint::Apply);
        assert_eq!(f.count(CrashPoint::Apply), 1);
    }
}
